"""ART index tests: adaptivity, point ops, scans, chunked build, fuzzing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConstraintError
from repro.storage.art import ARTIndex
from repro.storage.keys import encode_key


def key(*values) -> bytes:
    return encode_key(list(values))


class TestPointOperations:
    def test_insert_search(self):
        art = ARTIndex()
        art.insert(key("a"), 1)
        assert art.search(key("a")) == [1]
        assert art.search(key("b")) == []

    def test_multi_value_per_key(self):
        art = ARTIndex()
        art.insert(key("a"), 1)
        art.insert(key("a"), 2)
        assert sorted(art.search(key("a"))) == [1, 2]
        assert len(art) == 2

    def test_unique_rejects_duplicates(self):
        art = ARTIndex(unique=True)
        art.insert(key("a"), 1)
        with pytest.raises(ConstraintError):
            art.insert(key("a"), 2)
        assert len(art) == 1

    def test_contains(self):
        art = ARTIndex()
        art.insert(key("x", 1), 0)
        assert art.contains(key("x", 1))
        assert not art.contains(key("x", 2))

    def test_delete_specific_value(self):
        art = ARTIndex()
        art.insert(key("a"), 1)
        art.insert(key("a"), 2)
        assert art.delete(key("a"), 1)
        assert art.search(key("a")) == [2]

    def test_delete_whole_key(self):
        art = ARTIndex()
        art.insert(key("a"), 1)
        art.insert(key("a"), 2)
        assert art.delete(key("a"))
        assert art.search(key("a")) == []
        assert len(art) == 0

    def test_delete_missing_returns_false(self):
        art = ARTIndex()
        art.insert(key("a"), 1)
        assert not art.delete(key("zz"))
        assert not art.delete(key("a"), 99)

    def test_empty_index(self):
        art = ARTIndex()
        assert len(art) == 0
        assert art.search(key("a")) == []
        assert not art.delete(key("a"))
        assert list(art.items()) == []


class TestAdaptivity:
    def test_node_growth_through_all_widths(self):
        art = ARTIndex()
        for i in range(256):
            art.insert(bytes([3, i]) + b"\x00\x00", i)
        histogram = art.node_histogram()
        assert histogram["Node256"] >= 1
        assert histogram["Leaf"] == 256

    def test_small_fanout_stays_node4(self):
        art = ARTIndex()
        for word in ("cat", "car", "cab"):
            art.insert(key(word), word)
        histogram = art.node_histogram()
        assert histogram["Node16"] == 0
        assert histogram["Node48"] == 0
        assert histogram["Node256"] == 0

    def test_shrink_on_delete(self):
        art = ARTIndex()
        keys = [bytes([3, i]) + b"\x00\x00" for i in range(256)]
        for i, k in enumerate(keys):
            art.insert(k, i)
        for k in keys[8:]:
            art.delete(k)
        histogram = art.node_histogram()
        assert histogram["Node256"] == 0
        for i, k in enumerate(keys[:8]):
            assert art.search(k) == [i]

    def test_path_compression_splits_correctly(self):
        art = ARTIndex()
        art.insert(key("abcdefgh"), 1)
        art.insert(key("abcdefgz"), 2)  # long shared prefix then split
        art.insert(key("abQ"), 3)  # splits the compressed prefix
        assert art.search(key("abcdefgh")) == [1]
        assert art.search(key("abcdefgz")) == [2]
        assert art.search(key("abQ")) == [3]


class TestScans:
    def test_items_sorted(self):
        art = ARTIndex()
        words = ["pear", "apple", "fig", "banana", "applet", "app"]
        for i, word in enumerate(words):
            art.insert(key(word), i)
        scanned = [k for k, _ in art.items()]
        assert scanned == sorted(scanned)
        assert len(scanned) == len(words)

    def test_range_scan(self):
        art = ARTIndex()
        for i in range(100):
            art.insert(key(i), i)
        low, high = key(10), key(20)
        values = [vs[0] for _, vs in art.range_scan(low, high)]
        assert values == list(range(10, 20))

    def test_range_scan_open_ends(self):
        art = ARTIndex()
        for i in range(10):
            art.insert(key(i), i)
        assert len(list(art.range_scan())) == 10
        assert [v[0] for _, v in art.range_scan(low=key(7))] == [7, 8, 9]
        assert [v[0] for _, v in art.range_scan(high=key(3))] == [0, 1, 2]


class TestChunkedBuild:
    def test_chunked_equals_sequential(self):
        entries = [(key(f"k{i % 57}", i), i) for i in range(1000)]
        sequential = ARTIndex()
        for k, v in entries:
            sequential.insert(k, v)
        chunked = ARTIndex.build_chunked(entries, chunk_size=128)
        assert list(chunked.items()) == list(sequential.items())

    def test_chunked_unique_enforced_at_merge(self):
        entries = [(key("same"), 1), (key("same"), 2)]
        with pytest.raises(ConstraintError):
            ARTIndex.build_chunked(entries, chunk_size=1, unique=True)


class TestFuzz:
    def test_against_dict_reference(self):
        rng = random.Random(1234)
        art = ARTIndex()
        reference: dict[bytes, list[int]] = {}
        for step in range(8000):
            k = key(rng.choice("abcdefgh") * rng.randint(1, 6), rng.randint(0, 40))
            if rng.random() < 0.65:
                art.insert(k, step)
                reference.setdefault(k, []).append(step)
            else:
                values = reference.get(k)
                if values and rng.random() < 0.8:
                    victim = rng.choice(values)
                    assert art.delete(k, victim)
                    values.remove(victim)
                    if not values:
                        del reference[k]
                else:
                    art.delete(k, -1)  # value never stored: must be a no-op
        assert len(art) == sum(len(v) for v in reference.values())
        for k, values in reference.items():
            assert sorted(art.search(k)) == sorted(values)
        scanned = [k for k, _ in art.items()]
        assert scanned == sorted(reference)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["put", "del"]), st.text(max_size=6)),
        max_size=200,
    )
)
def test_art_matches_dict_property(operations):
    art = ARTIndex()
    reference: dict[bytes, int] = {}
    for op, word in operations:
        k = key(word)
        if op == "put":
            art.insert(k, 1)
            reference[k] = reference.get(k, 0) + 1
        else:
            removed = art.delete(k)
            assert removed == (k in reference)
            reference.pop(k, None)
    assert sorted(k for k, _ in art.items()) == sorted(reference)
    for k, count in reference.items():
        assert len(art.search(k)) == count


class TestEdgeItems:
    def test_empty_tree_has_no_edges(self):
        art = ARTIndex()
        assert art.first_item() is None
        assert art.last_item() is None

    def test_first_and_last_match_sorted_items(self):
        art = ARTIndex()
        values = [5, -2, 17, 0, 9, 3]
        for v in values:
            art.insert(key(v), v)
        items = list(art.items())
        assert art.first_item() == items[0]
        assert art.last_item() == items[-1]
        assert art.first_item()[1] == [-2]
        assert art.last_item()[1] == [17]

    def test_edges_track_deletions(self):
        art = ARTIndex()
        for v in ["b", "a", "c"]:
            art.insert(key(v), v)
        art.delete(key("a"))
        assert art.first_item()[1] == ["b"]
        art.delete(key("c"))
        assert art.last_item()[1] == ["b"]


@given(
    st.lists(
        st.one_of(st.integers(-10**6, 10**6), st.text(max_size=8)),
        min_size=1,
        max_size=80,
        unique=True,
    )
)
@settings(max_examples=60, deadline=None)
def test_edge_items_match_min_max_property(values):
    art = ARTIndex()
    for v in values:
        art.insert(key(v), v)
    ordered = sorted(encode_key([v]) for v in values)
    assert art.first_item()[0] == ordered[0]
    assert art.last_item()[0] == ordered[-1]
