"""Memcomparable key encoding: unit + property tests."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.datatypes.values import sql_compare
from repro.errors import TypeError_
from repro.storage.keys import decode_key, encode_key, encode_value


class TestEncodeBasics:
    def test_null_sorts_first(self):
        assert encode_value(None) < encode_value(False)
        assert encode_value(None) < encode_value(-1e300)
        assert encode_value(None) < encode_value("")

    def test_booleans_ordered(self):
        assert encode_value(False) < encode_value(True)

    def test_numbers_ordered(self):
        values = [-1e12, -5.5, -1, 0, 0.25, 1, 2, 1e12]
        encoded = [encode_value(v) for v in values]
        assert encoded == sorted(encoded)

    def test_int_float_interleave(self):
        assert encode_value(1) < encode_value(1.5) < encode_value(2)
        assert encode_value(2) == encode_value(2.0)

    def test_strings_ordered(self):
        values = ["", "a", "ab", "b", "ba"]
        encoded = [encode_value(v) for v in values]
        assert encoded == sorted(encoded)

    def test_string_prefix_sorts_before_extension(self):
        assert encode_value("a") < encode_value("aa")

    def test_embedded_nul_handled(self):
        values = ["a", "a\x00", "a\x00b", "ab"]
        encoded = [encode_value(v) for v in values]
        assert encoded == sorted(encoded)
        assert decode_key(encode_key(["a\x00b"])) == ["a\x00b"]

    def test_dates_ordered(self):
        early = datetime.date(2020, 1, 1)
        late = datetime.date(2024, 12, 31)
        assert encode_value(early) < encode_value(late)

    def test_huge_int_raises(self):
        with pytest.raises(TypeError_):
            encode_value(2**60)

    def test_unencodable_raises(self):
        with pytest.raises(TypeError_):
            encode_value(object())


class TestCompositeKeys:
    def test_composite_ordering_is_lexicographic(self):
        assert encode_key(["a", 2]) < encode_key(["a", 10])
        assert encode_key(["a", 99]) < encode_key(["b", 0])

    def test_keys_are_prefix_free(self):
        # No full key may be a strict prefix of another (ART relies on it).
        keys = [
            encode_key(values)
            for values in (
                [None, None],
                [None, False],
                ["a", 1],
                ["a", None],
                ["ab", 1],
                ["a\x00", 1],
            )
        ]
        for a in keys:
            for b in keys:
                if a != b:
                    assert not b.startswith(a)

    def test_decode_roundtrip(self):
        original = [None, True, "hello", "with'quote"]
        decoded = decode_key(encode_key(original))
        assert decoded == original

    def test_decode_numbers_as_floats(self):
        assert decode_key(encode_key([42]))[0] == 42.0


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)


def _rank(value):
    """Total order over mixed scalars mirroring the encoding's tag order."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, float(value))
    return (3, value)


@given(st.lists(_scalar, min_size=2, max_size=30))
def test_encoding_preserves_order(values):
    """Sorting by encoded bytes equals sorting by SQL value order."""
    by_encoding = sorted(values, key=lambda v: encode_value(v))
    by_value = sorted(values, key=_rank)
    assert [_rank(v) for v in by_encoding] == [_rank(v) for v in by_value]


@given(
    st.lists(
        st.tuples(st.text(max_size=10), st.integers(-(2**40), 2**40)),
        min_size=1,
        max_size=20,
    )
)
def test_composite_roundtrip_property(rows):
    for row in rows:
        decoded = decode_key(encode_key(list(row)))
        assert decoded[0] == row[0]
        assert decoded[1] == float(row[1])


@given(_scalar, _scalar)
def test_equal_values_equal_encodings(a, b):
    same_rank = _rank(a) == _rank(b)
    same_encoding = encode_value(a) == encode_value(b)
    assert same_rank == same_encoding
