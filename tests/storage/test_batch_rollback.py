"""Batch-write atomicity: a constraint failure anywhere inside
``insert_batch`` / ``upsert_batch`` must leave the table byte-for-byte
as it was — row list (including free-listed ``None`` slots), free list,
live count, and every ART index.  Also covers the refresh-snapshot
abort path, which restores the same invariants after a failed refresh
mutated a pinned table."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.datatypes import INTEGER, VARCHAR
from repro.errors import ConstraintError
from repro.storage.table import Table


def make_table(not_null_v: bool = False) -> Table:
    schema = TableSchema(
        "t",
        [
            Column("k", INTEGER),
            Column("s", VARCHAR),
            Column("v", INTEGER, not_null=not_null_v),
        ],
        primary_key=["k"],
    )
    table = Table(schema)
    table.add_index("sec_v", [2], unique=True)
    return table


def fingerprint(table: Table) -> tuple:
    """Exact physical state: rows (with holes), free list, live count,
    and every index's full (key, row_ids) listing."""
    return (
        list(table._rows),
        list(table._free_slots),
        table._live_count,
        {
            name: [
                (key, list(values)) for key, values in index.items()
            ]
            for name, (_, index) in table._indexes.items()
        },
    )


def seeded_table(**kwargs) -> Table:
    table = make_table(**kwargs)
    table.insert_batch([(1, "a", 10), (2, "b", 20), (3, "c", 30)])
    # Leave a hole on the free list so the rollback has to undo both a
    # reused slot and a tail extend.
    table.delete_by_key([2])
    assert table._free_slots
    return table


class TestInsertBatchRollback:
    def test_secondary_unique_mid_batch(self):
        table = seeded_table()
        before = fingerprint(table)
        # Fresh primary keys (the __pk__ pass succeeds and must be
        # undone), second row collides on the unique secondary index.
        with pytest.raises(ConstraintError):
            table.insert_batch([(8, "x", 99), (9, "y", 30)])
        assert fingerprint(table) == before

    def test_intra_batch_duplicate_on_secondary(self):
        table = seeded_table()
        before = fingerprint(table)
        with pytest.raises(ConstraintError):
            table.insert_batch([(8, "x", 99), (9, "y", 99)])
        assert fingerprint(table) == before

    def test_primary_key_collision(self):
        table = seeded_table()
        before = fingerprint(table)
        with pytest.raises(ConstraintError):
            table.insert_batch([(8, "x", 99), (1, "dup", 98)])
        assert fingerprint(table) == before

    def test_not_null_mid_batch(self):
        table = seeded_table(not_null_v=True)
        before = fingerprint(table)
        with pytest.raises(ConstraintError):
            table.insert_batch([(8, "x", 99), (9, "y", None)])
        assert fingerprint(table) == before

    def test_rollback_preserves_insert_capacity(self):
        """After a rolled-back batch the table accepts the corrected
        batch and lands in the same state as if the failure never
        happened."""
        table = seeded_table()
        with pytest.raises(ConstraintError):
            table.insert_batch([(8, "x", 99), (9, "y", 30)])
        table.insert_batch([(8, "x", 99), (9, "y", 31)])
        want = seeded_table()
        want.insert_batch([(8, "x", 99), (9, "y", 31)])
        assert fingerprint(table) == fingerprint(want)


class TestUpsertBatchRollback:
    def test_replaced_rows_restored_on_secondary_collision(self):
        table = seeded_table()
        before = fingerprint(table)
        # Row 1 is replaced (deleted) first; the insert half then dies
        # because v=31 collides with... nothing — but v=30 (row 3) does.
        with pytest.raises(ConstraintError):
            table.upsert_batch([(1, "a2", 40), (4, "d", 30)])
        assert fingerprint(table) == before

    def test_replaced_rows_restored_on_not_null(self):
        table = seeded_table(not_null_v=True)
        before = fingerprint(table)
        with pytest.raises(ConstraintError):
            table.upsert_batch([(1, "a2", 40), (4, "d", None)])
        assert fingerprint(table) == before

    def test_successful_upsert_after_rollback(self):
        table = seeded_table()
        with pytest.raises(ConstraintError):
            table.upsert_batch([(1, "a2", 40), (4, "d", 30)])
        table.upsert_batch([(1, "a2", 40), (4, "d", 44)])
        rows = sorted(table.scan())
        assert rows == [(1, "a2", 40), (3, "c", 30), (4, "d", 44)]


class TestSnapshotAbort:
    def test_abort_restores_rows_free_list_and_live_count(self):
        table = seeded_table()
        before_rows = list(table._rows)
        before_free = list(table._free_slots)
        before_live = table._live_count
        table.begin_refresh_snapshot()
        # Mutations during the pinned refresh: fill the hole, extend the
        # tail, delete a pre-existing row.
        table.insert_batch([(8, "x", 99), (9, "y", 98)])
        table.delete_by_key([3])
        table.abort_refresh_snapshot()
        assert table._snapshot_pinned is False
        assert list(table._rows) == before_rows
        assert list(table._free_slots) == before_free
        assert table._live_count == before_live
        assert sorted(table.scan()) == [(1, "a", 10), (3, "c", 30)]

    def test_abort_without_mutation_is_noop(self):
        table = seeded_table()
        before = fingerprint(table)
        table.begin_refresh_snapshot()
        table.abort_refresh_snapshot()
        assert fingerprint(table) == before

    def test_abort_is_idempotent_and_unpinned_abort_safe(self):
        table = seeded_table()
        before = fingerprint(table)
        table.abort_refresh_snapshot()  # never pinned
        table.begin_refresh_snapshot()
        table.insert((8, "x", 99))
        table.abort_refresh_snapshot()
        table.abort_refresh_snapshot()  # second abort: no-op
        assert (
            list(table._rows),
            list(table._free_slots),
            table._live_count,
        ) == (before[0], before[1], before[2])
