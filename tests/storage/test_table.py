"""Row-store table tests: constraints, upserts, index maintenance."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.datatypes import INTEGER, VARCHAR
from repro.errors import BinderError, ConstraintError, ExecutionError
from repro.storage.table import Table


def make_table(primary_key=None) -> Table:
    schema = TableSchema(
        "t",
        [Column("k", VARCHAR), Column("v", INTEGER)],
        primary_key=primary_key or [],
    )
    return Table(schema)


class TestSchema:
    def test_column_index_case_insensitive(self):
        table = make_table()
        assert table.schema.column_index("K") == 0
        assert table.schema.column_index("v") == 1

    def test_missing_column_raises(self):
        with pytest.raises(BinderError):
            make_table().schema.column_index("nope")

    def test_bad_primary_key_raises(self):
        with pytest.raises(BinderError):
            TableSchema("t", [Column("a", INTEGER)], primary_key=["missing"])


class TestInsertDelete:
    def test_insert_and_scan(self):
        table = make_table()
        table.insert(["a", 1])
        table.insert(["b", 2])
        assert list(table.scan()) == [("a", 1), ("b", 2)]
        assert len(table) == 2

    def test_insert_coerces_types(self):
        table = make_table()
        table.insert(["a", "42"])
        assert list(table.scan()) == [("a", 42)]

    def test_wrong_arity_raises(self):
        with pytest.raises(ExecutionError):
            make_table().insert(["a"])

    def test_delete_row_reuses_slot(self):
        table = make_table()
        rid = table.insert(["a", 1])
        table.insert(["b", 2])
        table.delete_row(rid)
        assert len(table) == 1
        new_rid = table.insert(["c", 3])
        assert new_rid == rid  # slot reuse
        assert sorted(table.scan()) == [("b", 2), ("c", 3)]

    def test_delete_where(self):
        table = make_table()
        for i in range(10):
            table.insert([f"k{i}", i])
        removed = table.delete_where(lambda row: row[1] % 2 == 0)
        assert removed == 5
        assert all(row[1] % 2 == 1 for row in table.scan())

    def test_truncate(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        assert table.truncate() == 1
        assert len(table) == 0
        table.insert(["a", 2])  # PK index was reset too
        assert table.pk_lookup(["a"]) == ("a", 2)


class TestPrimaryKey:
    def test_duplicate_pk_rejected(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        with pytest.raises(ConstraintError):
            table.insert(["a", 2])
        assert len(table) == 1

    def test_pk_lookup(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        assert table.pk_lookup(["a"]) == ("a", 1)
        assert table.pk_lookup(["z"]) is None

    def test_upsert_inserts_then_replaces(self):
        table = make_table(primary_key=["k"])
        table.upsert(["a", 1])
        table.upsert(["a", 99])
        assert len(table) == 1
        assert table.pk_lookup(["a"]) == ("a", 99)

    def test_upsert_requires_pk(self):
        with pytest.raises(ExecutionError):
            make_table().upsert(["a", 1])

    def test_null_pk_values_group_as_equal(self):
        # IVM-generated tables rely on NULL keys colliding (Z-set grouping).
        table = make_table(primary_key=["k"])
        table.insert([None, 1])
        with pytest.raises(ConstraintError):
            table.insert([None, 2])
        table.upsert([None, 3])
        assert table.pk_lookup([None]) == (None, 3)


class TestNotNull:
    def test_not_null_enforced(self):
        schema = TableSchema("t", [Column("a", INTEGER, not_null=True)])
        table = Table(schema)
        with pytest.raises(ConstraintError):
            table.insert([None])


class TestSecondaryIndexes:
    def test_add_index_populates_existing_rows(self):
        table = make_table()
        table.insert(["a", 1])
        table.insert(["b", 1])
        table.add_index("by_v", [1])
        assert sorted(table.lookup("by_v", [1])) == [("a", 1), ("b", 1)]

    def test_index_maintained_on_mutations(self):
        table = make_table()
        table.add_index("by_v", [1])
        rid = table.insert(["a", 1])
        table.insert(["b", 2])
        assert table.lookup("by_v", [1]) == [("a", 1)]
        table.update_row(rid, ["a", 5])
        assert table.lookup("by_v", [1]) == []
        assert table.lookup("by_v", [5]) == [("a", 5)]
        table.delete_where(lambda row: row[0] == "a")
        assert table.lookup("by_v", [5]) == []

    def test_chunked_index_build_matches(self):
        table = make_table()
        for i in range(500):
            table.insert([f"k{i}", i % 13])
        plain = table.add_index("plain", [1])
        chunked = table.add_index("chunked", [1], chunked=True, chunk_size=64)
        assert list(plain.items()) == list(chunked.items())

    def test_unique_index_rollback_on_conflict(self):
        table = make_table(primary_key=["k"])
        table.add_index("by_v", [1], unique=True)
        table.insert(["a", 1])
        with pytest.raises(ConstraintError):
            table.insert(["b", 1])  # secondary unique violation
        # The PK index entry for 'b' must have been rolled back:
        assert table.pk_lookup(["b"]) is None
        table.insert(["b", 2])  # now fine

    def test_update_rollback_on_conflict(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        rid = table.insert(["b", 2])
        with pytest.raises(ConstraintError):
            table.update_row(rid, ["a", 9])  # PK collision with 'a'
        assert table.pk_lookup(["b"]) == ("b", 2)  # old state restored


class TestScanColumnsCache:
    def test_scan_columns_matches_scan_order(self):
        table = make_table()
        table.insert(["a", 1])
        table.insert(["b", 2])
        assert table.scan_columns() == [["a", "b"], [1, 2]]

    def test_cache_extends_on_tail_append(self):
        table = make_table()
        table.insert(["a", 1])
        first = table.scan_columns()
        table.insert(["b", 2])
        second = table.scan_columns()
        # Publish-then-swap: the handed-out lists stay frozen; the
        # append published fresh lists carrying the extension.
        assert first == [["a"], [1]]
        assert second == [["a", "b"], [1, 2]]

    def test_cache_appends_in_place_between_handouts(self):
        table = make_table()
        table.insert(["a", 1])
        table.scan_columns()
        table.insert(["b", 2])
        third = table.scan_columns()
        table.insert(["c", 3])  # third was handed out → fresh lists
        assert third == [["a", "b"], [1, 2]]
        assert table.scan_columns() == [["a", "b", "c"], [1, 2, 3]]

    def test_cache_invalidated_by_delete_and_slot_reuse(self):
        table = make_table()
        rid = table.insert(["a", 1])
        table.insert(["b", 2])
        table.scan_columns()
        table.delete_row(rid)
        assert table.scan_columns() == [["b"], [2]]
        table.insert(["c", 3])  # reuses the freed slot
        assert table.scan_columns() == [
            [row[0] for row in table.scan()],
            [row[1] for row in table.scan()],
        ]

    def test_concurrent_handout_and_append_never_torn(self):
        """Regression for the scan_columns race: the old in-place extend
        could leave a reader holding column lists of unequal lengths
        mid-append.  Publish-then-swap freezes handed-out lists, so a
        reader thread hammering scan_columns during a writer's append
        storm must always see rectangular columns."""
        import sys
        import threading

        table = make_table()
        table.insert(["seed", 0])
        errors: list = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                cols = table.scan_columns()
                if len(cols[0]) != len(cols[1]):
                    errors.append((len(cols[0]), len(cols[1])))
                    stop.set()
                    return

        thread = threading.Thread(target=reader)
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-4)
        thread.start()
        try:
            for i in range(4000):
                table.insert([f"k{i}", i])
        finally:
            stop.set()
            thread.join()
            sys.setswitchinterval(old_interval)
        assert not errors
        assert table.scan_columns()[0][0] == "seed"

    def test_cache_invalidated_by_update_and_truncate(self):
        table = make_table()
        rid = table.insert(["a", 1])
        table.scan_columns()
        table.update_row(rid, ["a", 9])
        assert table.scan_columns() == [["a"], [9]]
        table.truncate()
        assert table.scan_columns() == [[], []]
        table.insert(["z", 0])
        assert table.scan_columns() == [["z"], [0]]


# ---------------------------------------------------------------------------
# Batch-vs-row ingestion equivalence (hypothesis)
# ---------------------------------------------------------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402

_row = st.tuples(st.text(max_size=6), st.integers(-1000, 1000))


@given(st.lists(_row, max_size=40))
@settings(max_examples=80, deadline=None)
def test_insert_batch_equals_sequential_inserts(rows):
    """One insert_batch call leaves exactly the state a row-at-a-time
    insert loop does: same scan order, same columnar mirror, same
    secondary-index answers."""
    sequential = make_table()
    batched = make_table()
    sequential.add_index("by_v", [1])
    batched.add_index("by_v", [1])
    for row in rows:
        sequential.insert(row, coerce=False)
    assert batched.insert_batch(rows, coerce=False) == len(rows)
    assert list(batched.scan()) == list(sequential.scan())
    assert batched.scan_columns() == sequential.scan_columns()
    for _, value in rows:
        assert sorted(batched.lookup("by_v", [value])) == sorted(
            sequential.lookup("by_v", [value])
        )


@given(st.lists(_row, min_size=1, max_size=40, unique_by=lambda r: r[0]))
@settings(max_examples=60, deadline=None)
def test_insert_batch_unique_keys_match_sequential(rows):
    sequential = make_table(primary_key=["k"])
    batched = make_table(primary_key=["k"])
    for row in rows:
        sequential.insert(row, coerce=False)
    batched.insert_batch(rows, coerce=False)
    assert sorted(batched.scan()) == sorted(sequential.scan())
    for key, _ in rows:
        assert batched.pk_lookup([key]) == sequential.pk_lookup([key])


@given(st.lists(_row, min_size=2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_upsert_batch_equals_sequential_upserts(rows):
    """upsert_batch matches a loop of upserts, including intra-batch key
    collisions (later rows win) and replacement of pre-existing rows."""
    sequential = make_table(primary_key=["k"])
    batched = make_table(primary_key=["k"])
    seed, rest = rows[: len(rows) // 2], rows[len(rows) // 2:]
    for table in (sequential, batched):
        table.upsert_batch(seed)
    for row in rest:
        sequential.upsert(row)
    assert batched.upsert_batch(rest) == len(rest)
    assert sorted(batched.scan()) == sorted(sequential.scan())
    assert len(batched) == len(sequential)


def test_insert_batch_rolls_back_atomically_on_duplicate():
    table = make_table(primary_key=["k"])
    table.insert(["kept", 0])
    with pytest.raises(ConstraintError):
        table.insert_batch([("a", 1), ("b", 2), ("a", 3)])
    with pytest.raises(ConstraintError):
        table.insert_batch([("x", 1), ("kept", 2)])
    # Nothing from either failed batch survived, in rows or indexes.
    assert sorted(table.scan()) == [("kept", 0)]
    assert table.pk_lookup(["a"]) is None
    assert table.pk_lookup(["x"]) is None


def test_insert_batch_secondary_unique_rollback():
    table = make_table(primary_key=["k"])
    table.add_index("by_v", [1], unique=True)
    table.insert(["a", 1])
    with pytest.raises(ConstraintError):
        table.insert_batch([("b", 2), ("c", 1)])  # c collides on by_v
    assert sorted(table.scan()) == [("a", 1)]
    assert table.pk_lookup(["b"]) is None
    assert table.lookup("by_v", [2]) == []


def test_upsert_batch_restores_replaced_rows_on_failure():
    table = make_table(primary_key=["k"])
    table.add_index("by_v", [1], unique=True)
    table.insert(["a", 1])
    table.insert(["b", 2])
    with pytest.raises(ConstraintError):
        # 'a' is replaced first, then ('c', 2) collides with 'b' on by_v.
        table.upsert_batch([("a", 5), ("c", 2)])
    assert sorted(table.scan()) == [("a", 1), ("b", 2)]  # nothing lost
    assert table.pk_lookup(["a"]) == ("a", 1)
    assert table.lookup("by_v", [1]) == [("a", 1)]


def test_upsert_batch_rejects_bad_arity_before_replacing():
    table = make_table(primary_key=["k"])
    table.insert(["a", 1])
    with pytest.raises(ExecutionError):
        table.upsert_batch([("a", 5), ("short",)])
    assert table.pk_lookup(["a"]) == ("a", 1)  # nothing was replaced
