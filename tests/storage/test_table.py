"""Row-store table tests: constraints, upserts, index maintenance."""

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.datatypes import INTEGER, VARCHAR
from repro.errors import BinderError, ConstraintError, ExecutionError
from repro.storage.table import Table


def make_table(primary_key=None) -> Table:
    schema = TableSchema(
        "t",
        [Column("k", VARCHAR), Column("v", INTEGER)],
        primary_key=primary_key or [],
    )
    return Table(schema)


class TestSchema:
    def test_column_index_case_insensitive(self):
        table = make_table()
        assert table.schema.column_index("K") == 0
        assert table.schema.column_index("v") == 1

    def test_missing_column_raises(self):
        with pytest.raises(BinderError):
            make_table().schema.column_index("nope")

    def test_bad_primary_key_raises(self):
        with pytest.raises(BinderError):
            TableSchema("t", [Column("a", INTEGER)], primary_key=["missing"])


class TestInsertDelete:
    def test_insert_and_scan(self):
        table = make_table()
        table.insert(["a", 1])
        table.insert(["b", 2])
        assert list(table.scan()) == [("a", 1), ("b", 2)]
        assert len(table) == 2

    def test_insert_coerces_types(self):
        table = make_table()
        table.insert(["a", "42"])
        assert list(table.scan()) == [("a", 42)]

    def test_wrong_arity_raises(self):
        with pytest.raises(ExecutionError):
            make_table().insert(["a"])

    def test_delete_row_reuses_slot(self):
        table = make_table()
        rid = table.insert(["a", 1])
        table.insert(["b", 2])
        table.delete_row(rid)
        assert len(table) == 1
        new_rid = table.insert(["c", 3])
        assert new_rid == rid  # slot reuse
        assert sorted(table.scan()) == [("b", 2), ("c", 3)]

    def test_delete_where(self):
        table = make_table()
        for i in range(10):
            table.insert([f"k{i}", i])
        removed = table.delete_where(lambda row: row[1] % 2 == 0)
        assert removed == 5
        assert all(row[1] % 2 == 1 for row in table.scan())

    def test_truncate(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        assert table.truncate() == 1
        assert len(table) == 0
        table.insert(["a", 2])  # PK index was reset too
        assert table.pk_lookup(["a"]) == ("a", 2)


class TestPrimaryKey:
    def test_duplicate_pk_rejected(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        with pytest.raises(ConstraintError):
            table.insert(["a", 2])
        assert len(table) == 1

    def test_pk_lookup(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        assert table.pk_lookup(["a"]) == ("a", 1)
        assert table.pk_lookup(["z"]) is None

    def test_upsert_inserts_then_replaces(self):
        table = make_table(primary_key=["k"])
        table.upsert(["a", 1])
        table.upsert(["a", 99])
        assert len(table) == 1
        assert table.pk_lookup(["a"]) == ("a", 99)

    def test_upsert_requires_pk(self):
        with pytest.raises(ExecutionError):
            make_table().upsert(["a", 1])

    def test_null_pk_values_group_as_equal(self):
        # IVM-generated tables rely on NULL keys colliding (Z-set grouping).
        table = make_table(primary_key=["k"])
        table.insert([None, 1])
        with pytest.raises(ConstraintError):
            table.insert([None, 2])
        table.upsert([None, 3])
        assert table.pk_lookup([None]) == (None, 3)


class TestNotNull:
    def test_not_null_enforced(self):
        schema = TableSchema("t", [Column("a", INTEGER, not_null=True)])
        table = Table(schema)
        with pytest.raises(ConstraintError):
            table.insert([None])


class TestSecondaryIndexes:
    def test_add_index_populates_existing_rows(self):
        table = make_table()
        table.insert(["a", 1])
        table.insert(["b", 1])
        table.add_index("by_v", [1])
        assert sorted(table.lookup("by_v", [1])) == [("a", 1), ("b", 1)]

    def test_index_maintained_on_mutations(self):
        table = make_table()
        table.add_index("by_v", [1])
        rid = table.insert(["a", 1])
        table.insert(["b", 2])
        assert table.lookup("by_v", [1]) == [("a", 1)]
        table.update_row(rid, ["a", 5])
        assert table.lookup("by_v", [1]) == []
        assert table.lookup("by_v", [5]) == [("a", 5)]
        table.delete_where(lambda row: row[0] == "a")
        assert table.lookup("by_v", [5]) == []

    def test_chunked_index_build_matches(self):
        table = make_table()
        for i in range(500):
            table.insert([f"k{i}", i % 13])
        plain = table.add_index("plain", [1])
        chunked = table.add_index("chunked", [1], chunked=True, chunk_size=64)
        assert list(plain.items()) == list(chunked.items())

    def test_unique_index_rollback_on_conflict(self):
        table = make_table(primary_key=["k"])
        table.add_index("by_v", [1], unique=True)
        table.insert(["a", 1])
        with pytest.raises(ConstraintError):
            table.insert(["b", 1])  # secondary unique violation
        # The PK index entry for 'b' must have been rolled back:
        assert table.pk_lookup(["b"]) is None
        table.insert(["b", 2])  # now fine

    def test_update_rollback_on_conflict(self):
        table = make_table(primary_key=["k"])
        table.insert(["a", 1])
        rid = table.insert(["b", 2])
        with pytest.raises(ConstraintError):
            table.update_row(rid, ["a", 9])  # PK collision with 'a'
        assert table.pk_lookup(["b"]) == ("b", 2)  # old state restored


class TestScanColumnsCache:
    def test_scan_columns_matches_scan_order(self):
        table = make_table()
        table.insert(["a", 1])
        table.insert(["b", 2])
        assert table.scan_columns() == [["a", "b"], [1, 2]]

    def test_cache_extends_on_tail_append(self):
        table = make_table()
        table.insert(["a", 1])
        first = table.scan_columns()
        table.insert(["b", 2])
        second = table.scan_columns()
        assert second is first  # same cached object, extended in place
        assert second == [["a", "b"], [1, 2]]

    def test_cache_invalidated_by_delete_and_slot_reuse(self):
        table = make_table()
        rid = table.insert(["a", 1])
        table.insert(["b", 2])
        table.scan_columns()
        table.delete_row(rid)
        assert table.scan_columns() == [["b"], [2]]
        table.insert(["c", 3])  # reuses the freed slot
        assert table.scan_columns() == [
            [row[0] for row in table.scan()],
            [row[1] for row in table.scan()],
        ]

    def test_cache_invalidated_by_update_and_truncate(self):
        table = make_table()
        rid = table.insert(["a", 1])
        table.scan_columns()
        table.update_row(rid, ["a", 9])
        assert table.scan_columns() == [["a"], [9]]
        table.truncate()
        assert table.scan_columns() == [[], []]
        table.insert(["z", 0])
        assert table.scan_columns() == [["z"], [0]]
