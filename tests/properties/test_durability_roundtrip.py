"""Property tests for the durability codecs.

Round-trips, under Hypothesis:

* WAL records — ``encode_record`` → file bytes → ``read_records`` gives
  back the same tables and codec-normalized rows; truncating anywhere
  yields a clean prefix (never an error, never a partial record);
  flipping a byte inside a complete record raises :class:`WALError`.
* Checkpoint files — ``write_checkpoint`` → ``read_checkpoint`` returns
  the same LSN, meta and normalized sections; any single-byte corruption
  makes the reader skip the file (return None), never crash.
* Incremental-state images — ``GroupLivenessState``,
  ``GroupExtremaState`` and ``IndexedJoinState`` ``dump()`` images,
  re-``load``-ed, answer identically to the original state (including
  the ``-0.0`` vs ``0`` collapse the memcomparable codec performs, and
  empty states).  The sharded wrappers, loaded from the same flattened
  dump, agree with the unsharded answers.
"""

from __future__ import annotations

import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WALError
from repro.storage.keys import decode_key, encode_key
from repro.storage.wal import HEADER_SIZE, WriteAheadLog, read_records
from repro.storage.checkpoint import (
    Checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.zset.incremental import (
    GroupExtremaState,
    GroupLivenessState,
    IndexedJoinState,
    ShardedExtremaState,
    ShardedJoinState,
    ShardedLivenessState,
)

# Values the memcomparable codec accepts.  Doubles are constrained to
# what encode_key allows (no NaN; integers only up to 2**53).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53) + 1, max_value=2**53 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
    st.dates(
        min_value=datetime.date(1, 1, 1), max_value=datetime.date(9999, 12, 28)
    ),
)
rows = st.lists(scalars, min_size=1, max_size=5).map(tuple)


def normalize_row(row):
    """What one codec round-trip does to a row (the states and replay
    paths are built to treat these values as the same address)."""
    return tuple(decode_key(encode_key(row)))


# -- WAL ---------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=8), st.lists(rows, max_size=4)),
        max_size=6,
    )
)
def test_wal_roundtrip(tmp_path_factory, batches):
    tmp_path = tmp_path_factory.mktemp("wal")
    path = tmp_path / "wal.log"
    wal = WriteAheadLog.open(path)
    for table, table_rows in batches:
        wal.append(table, table_rows)
    wal.close()
    records, valid_size = read_records(path)
    assert valid_size == path.stat().st_size
    assert [r.table for r in records] == [table for table, _ in batches]
    assert [r.lsn for r in records] == list(range(1, len(batches) + 1))
    for record, (_, table_rows) in zip(records, batches):
        assert record.rows == [normalize_row(row) for row in table_rows]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.lists(rows, max_size=3), min_size=1, max_size=4),
    st.data(),
)
def test_wal_truncation_yields_prefix(tmp_path_factory, batches, data):
    tmp_path = tmp_path_factory.mktemp("wal-trunc")
    path = tmp_path / "wal.log"
    wal = WriteAheadLog.open(path)
    for i, table_rows in enumerate(batches):
        wal.append(f"t{i}", table_rows)
    wal.close()
    size = path.stat().st_size
    cut = data.draw(st.integers(min_value=0, max_value=size))
    with open(path, "r+b") as handle:
        handle.truncate(cut)
    records, valid_size = read_records(path)
    assert valid_size <= cut
    # Records form a strict prefix of the original batches.
    assert len(records) <= len(batches)
    for i, record in enumerate(records):
        assert record.table == f"t{i}"
        assert record.lsn == i + 1
    # Re-opening resumes cleanly after the prefix.
    reopened = WriteAheadLog.open(path)
    assert reopened.last_lsn == len(records)
    assert path.stat().st_size == max(valid_size, HEADER_SIZE)
    reopened.close()


@settings(max_examples=40, deadline=None)
@given(rows, st.data())
def test_wal_corruption_raises(tmp_path_factory, row, data):
    tmp_path = tmp_path_factory.mktemp("wal-corrupt")
    path = tmp_path / "wal.log"
    wal = WriteAheadLog.open(path)
    wal.append("t", [row])
    wal.close()
    blob = bytearray(path.read_bytes())
    # Flip one byte inside the record (past the file magic).  Flipping
    # inside the record *header* may instead read as a torn/short record;
    # either way it must never produce a record silently.
    position = data.draw(
        st.integers(min_value=HEADER_SIZE, max_value=len(blob) - 1)
    )
    original = blob[position]
    blob[position] ^= 0xFF
    path.write_bytes(bytes(blob))
    try:
        records, valid_size = read_records(path)
    except WALError:
        return  # CRC (or structure) caught it
    # A length-field flip can make the record look torn: then we must
    # have recovered nothing, not a mangled record.
    assert records == []
    assert valid_size == HEADER_SIZE


# -- checkpoint files --------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**63 - 1),
    st.dictionaries(
        st.text(min_size=1, max_size=8), st.integers(-100, 100), max_size=4
    ),
    st.dictionaries(
        st.text(min_size=1, max_size=10),
        st.lists(rows, max_size=4),
        max_size=4,
    ),
)
def test_checkpoint_roundtrip(tmp_path_factory, lsn, meta, sections):
    tmp_path = tmp_path_factory.mktemp("ckpt")
    path = tmp_path / "checkpoint-00000001.ckpt"
    write_checkpoint(path, lsn, meta, sections)
    loaded = read_checkpoint(path)
    assert isinstance(loaded, Checkpoint)
    assert loaded.lsn == lsn
    assert loaded.meta == meta
    assert loaded.sections == {
        name: [normalize_row(row) for row in section_rows]
        for name, section_rows in sections.items()
    }


@settings(max_examples=40, deadline=None)
@given(st.lists(rows, min_size=1, max_size=4), st.data())
def test_checkpoint_corruption_is_skipped(tmp_path_factory, section_rows, data):
    tmp_path = tmp_path_factory.mktemp("ckpt-corrupt")
    path = tmp_path / "checkpoint-00000001.ckpt"
    write_checkpoint(path, 7, {"v": 1}, {"rows:t": section_rows})
    blob = bytearray(path.read_bytes())
    position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    blob[position] ^= 0xFF
    path.write_bytes(bytes(blob))
    assert read_checkpoint(path) is None
    # Truncation anywhere is likewise a skip, not a crash.
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with open(path, "r+b") as handle:
        handle.truncate(cut)
    assert read_checkpoint(path) is None or cut == len(blob)


# -- incremental-state images ------------------------------------------------

group_keys = st.lists(scalars, min_size=1, max_size=2).map(tuple)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(group_keys, st.integers(min_value=1, max_value=50)),
        max_size=10,
        unique_by=lambda kv: encode_key(kv[0]),
    )
)
def test_liveness_dump_load(entries):
    state = GroupLivenessState()
    state.load(entries)
    image = state.dump()
    reloaded = GroupLivenessState()
    reloaded.load(image)
    assert sorted(reloaded.dump(), key=lambda kv: encode_key(kv[0])) == sorted(
        image, key=lambda kv: encode_key(kv[0])
    )
    # Sharded wrapper agrees on the same flattened image.
    sharded = ShardedLivenessState(4)
    sharded.load(image)
    assert sorted(sharded.dump(), key=lambda kv: encode_key(kv[0])) == sorted(
        image, key=lambda kv: encode_key(kv[0])
    )


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            group_keys,
            st.one_of(
                st.integers(-1000, 1000),
                st.floats(allow_nan=False, allow_infinity=False, width=64),
                st.text(max_size=6),
                st.dates(
                    min_value=datetime.date(1970, 1, 1),
                    max_value=datetime.date(2100, 1, 1),
                ),
            ),
            st.integers(min_value=1, max_value=9),
        ),
        max_size=12,
    )
)
def test_extrema_dump_load(entries):
    state = GroupExtremaState()
    state.load(entries)
    image = state.dump()
    reloaded = GroupExtremaState()
    reloaded.load(image)
    assert reloaded.dump() == image
    # Every group answers min and max identically after the round trip.
    for key, _, _ in image:
        for want_max in (False, True):
            assert reloaded.extremum(key, want_max) == state.extremum(
                key, want_max
            ), (key, want_max)
    sharded = ShardedExtremaState(4)
    sharded.load(image)
    for key, _, _ in image:
        for want_max in (False, True):
            assert sharded.extremum(key, want_max) == state.extremum(
                key, want_max
            )


def test_extrema_negative_zero_collapses_with_zero():
    """-0.0 and 0 encode identically, so they are one cell — dump/load
    must preserve that collapse, not resurrect two cells."""
    state = GroupExtremaState()
    state.load([(("g",), -0.0, 1), (("g",), 0, 1)])
    image = state.dump()
    assert len(image) == 1
    (entry,) = image
    assert entry[2] == 2
    reloaded = GroupExtremaState()
    reloaded.load(image)
    assert reloaded.extremum(("g",), False) == state.extremum(("g",), False)


def test_empty_state_dumps_empty():
    assert GroupLivenessState().dump() == []
    assert GroupExtremaState().dump() == []
    assert IndexedJoinState([0], [0]).dump() == []


join_rows = st.lists(
    st.tuples(
        st.integers(0, 5),  # join key
        st.one_of(st.integers(-50, 50), st.text(max_size=4), st.none()),
    ).map(tuple),
    max_size=10,
)


@settings(max_examples=60, deadline=None)
@given(join_rows, join_rows)
def test_join_state_dump_load(left, right):
    state = IndexedJoinState([0], [0])
    state.load_left(left)
    state.load_right(right)
    image = state.dump()
    entry_key = lambda entry: (entry[0], encode_key(entry[1]), entry[2])
    reloaded = IndexedJoinState([0], [0])
    reloaded.load_dump(image)
    assert sorted(reloaded.dump(), key=entry_key) == sorted(image, key=entry_key)
    # The sharded wrapper, loaded from the same flattened image, holds
    # the same multiset per side.
    sharded = ShardedJoinState([0], [0], shard_count=4)
    sharded.load_dump(image)
    assert sorted(sharded.dump(), key=entry_key) == sorted(
        reloaded.dump(), key=entry_key
    )
