"""Four-engine differential oracle for cascaded (view-over-view) IVM.

The same seeded DML stream is replayed against three DAG topologies —
a 2-level chain, a 3-level chain, and a diamond (two aggregate views
over one base table joined back together) — on four engine
configurations: **sql** (pure SQL propagation), **native** (vectorized
batch kernels), **adaptive** (cost-based plan re-selection), and
**sharded** (hash-partitioned join state). After every few steps each
DAG level is checked against a full recompute of its defining query
over its upstream's stored table, so an error introduced at level *k*
is caught at level *k* rather than smeared into the leaf.

The step budget across topologies × engines is asserted to stay at or
above 200 DML statements, mirroring the chaos-oracle budget test.
"""

from __future__ import annotations

import random

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm

CHAIN2_STEPS = 18
CHAIN3_STEPS = 18
DIAMOND_STEPS = 18
VERIFY_EVERY = 3

ENGINES = [
    ("sql", dict(batch_kernels=False)),
    ("native", dict(batch_kernels=True)),
    (
        "adaptive",
        dict(batch_kernels=True, adaptive=True, adaptive_epsilon=0.3,
             adaptive_seed=17),
    ),
    ("sharded", dict(batch_kernels=True, shard_count=2,
                     parallel_refresh=False)),
]

GROUPS = "abcdef"


def _engine(mode: PropagationMode, overrides: dict):
    con = Connection()
    ext = load_ivm(con, CompilerFlags(mode=mode, **overrides))
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
    # A pinned sentinel group keeps every level non-empty so scalar
    # aggregates never cross the empty-input edge mid-run.
    con.execute("INSERT INTO t VALUES ('zz', 1000), ('zz', 500)")
    for g in GROUPS:
        con.execute("INSERT INTO t VALUES (?, ?)", [g, 20])
    return con, ext


def _apply_step(con: Connection, rng: random.Random) -> None:
    kind = rng.choice(("insert", "insert", "insert", "delete", "update"))
    if kind == "insert":
        for _ in range(rng.randint(1, 3)):
            con.execute(
                "INSERT INTO t VALUES (?, ?)",
                [rng.choice(GROUPS), rng.randint(-50, 100)],
            )
    elif kind == "delete":
        con.execute(
            "DELETE FROM t WHERE g = ? AND v < ?",
            [rng.choice(GROUPS), rng.randint(-20, 40)],
        )
    else:
        con.execute(
            "UPDATE t SET v = v + ? WHERE g = ?",
            [rng.randint(-15, 15), rng.choice(GROUPS)],
        )


def _check_levels(con: Connection, levels: list[tuple[str, str]], label: str):
    """Each (view select, recompute select) pair must agree.

    The leaf is read first: under LAZY/BATCH that one read pulls the
    whole upstream closure fresh in topological order, so the per-level
    comparisons below see a converged DAG.
    """
    con.execute(levels[-1][0])
    for view_select, recompute_select in levels:
        got = con.execute(view_select).sorted()
        want = con.execute(recompute_select).sorted()
        assert got == want, (
            f"{label}: {view_select!r} diverged\n got={got}\nwant={want}"
        )


@pytest.mark.parametrize("label,overrides", ENGINES, ids=[e[0] for e in ENGINES])
def test_two_level_chain_matches_recompute(label, overrides):
    con, _ = _engine(PropagationMode.EAGER, overrides)
    con.execute(
        "CREATE MATERIALIZED VIEW v1 AS "
        "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW v2 AS SELECT g, s FROM v1 WHERE s > 10"
    )
    levels = [
        ("SELECT g, s, n FROM v1",
         "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g"),
        ("SELECT g, s FROM v2", "SELECT g, s FROM v1 WHERE s > 10"),
    ]
    rng = random.Random(1201)
    for step in range(CHAIN2_STEPS):
        _apply_step(con, rng)
        if step % VERIFY_EVERY == 0:
            _check_levels(con, levels, f"chain2/{label}/step{step}")
    _check_levels(con, levels, f"chain2/{label}/final")


@pytest.mark.parametrize("label,overrides", ENGINES, ids=[e[0] for e in ENGINES])
def test_three_level_chain_matches_recompute(label, overrides):
    con, ext = _engine(PropagationMode.LAZY, overrides)
    con.execute(
        "CREATE MATERIALIZED VIEW v1 AS "
        "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW v2 AS SELECT g, s FROM v1 WHERE s > 10"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW v3 AS "
        "SELECT SUM(s) AS grand, COUNT(*) AS ng FROM v2"
    )
    levels = [
        ("SELECT g, s, n FROM v1",
         "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g"),
        ("SELECT g, s FROM v2", "SELECT g, s FROM v1 WHERE s > 10"),
        ("SELECT grand, ng FROM v3", "SELECT SUM(s), COUNT(*) FROM v2"),
    ]
    rng = random.Random(1301)
    for step in range(CHAIN3_STEPS):
        _apply_step(con, rng)
        if step % VERIFY_EVERY == 0:
            _check_levels(con, levels, f"chain3/{label}/step{step}")
    _check_levels(con, levels, f"chain3/{label}/final")
    status = {entry["view"]: entry for entry in ext.status()}
    assert [status[v]["depth"] for v in ("v1", "v2", "v3")] == [0, 1, 2]


@pytest.mark.parametrize("label,overrides", ENGINES, ids=[e[0] for e in ENGINES])
def test_diamond_matches_recompute(label, overrides):
    """Two aggregate views over one base table, rejoined by a third: the
    join view sees the *same* base change through both arms and must not
    double-apply it."""
    con, _ = _engine(PropagationMode.BATCH, dict(overrides, batch_size=4))
    con.execute(
        "CREATE MATERIALIZED VIEW arm_sum AS "
        "SELECT g, SUM(v) AS s FROM t GROUP BY g"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW arm_cnt AS "
        "SELECT g, COUNT(*) AS n FROM t GROUP BY g"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW joined AS "
        "SELECT arm_sum.g, SUM(arm_sum.s) AS s, SUM(arm_cnt.n) AS n "
        "FROM arm_sum JOIN arm_cnt ON arm_sum.g = arm_cnt.g "
        "GROUP BY arm_sum.g"
    )
    levels = [
        ("SELECT g, s FROM arm_sum", "SELECT g, SUM(v) FROM t GROUP BY g"),
        ("SELECT g, n FROM arm_cnt", "SELECT g, COUNT(*) FROM t GROUP BY g"),
        ("SELECT g, s, n FROM joined",
         "SELECT arm_sum.g, SUM(arm_sum.s), SUM(arm_cnt.n) "
         "FROM arm_sum JOIN arm_cnt ON arm_sum.g = arm_cnt.g "
         "GROUP BY arm_sum.g"),
    ]
    rng = random.Random(1401)
    for step in range(DIAMOND_STEPS):
        _apply_step(con, rng)
        if step % VERIFY_EVERY == 0:
            _check_levels(con, levels, f"diamond/{label}/step{step}")
    _check_levels(con, levels, f"diamond/{label}/final")


def test_dag_step_budget():
    """The DAG oracle replays at least 200 seeded DML statements."""
    per_engine = CHAIN2_STEPS + CHAIN3_STEPS + DIAMOND_STEPS
    assert per_engine * len(ENGINES) >= 200
