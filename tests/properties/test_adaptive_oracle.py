"""Four-engine differential oracle with the adaptive planner in the loop.

Extends the three-engine harness of ``test_batch_oracle`` with a fourth
engine running ``adaptive=True``: the same seeded DML stream is replayed
through

(a) **pure SQL** (``batch_kernels=False``),
(b) **mixed** (native step 1 only, ``native_steps=(1,)``),
(c) **full native** (the default static pipeline), and
(d) **adaptive** — the planner re-picks the plan every round, with a
    high exploration rate so the stream exercises genuine mid-workload
    plan switches (kernel swaps, native/SQL step-3 flips).

The stream runs through distinct phases — uniform inserts, heavy group
skew, a retraction storm, then mixed churn — because the planner's
regime detection re-explores exactly at such boundaries, which is where
stale wiring (pending keys handed to a step that never ran) would
corrupt state.  After every few statements all four engines must agree
with each other and with full recomputation; over 200 randomized DML
statements total (asserted at the bottom).
"""

from __future__ import annotations

import random

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm

VIEW = (
    "CREATE MATERIALIZED VIEW q AS "
    "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
)
RECOMPUTE = "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g"

ENGINE_CONFIGS = [
    ("sql", dict(batch_kernels=False)),
    ("mixed", dict(batch_kernels=True, native_steps=(1,))),
    ("native", dict(batch_kernels=True)),
    (
        "adaptive",
        dict(batch_kernels=True, adaptive=True, adaptive_epsilon=0.3,
             adaptive_seed=17),
    ),
]


def _engines(mode=PropagationMode.LAZY, **extra):
    engines = []
    for label, overrides in ENGINE_CONFIGS:
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=mode, **overrides, **extra))
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(VIEW)
        engines.append((label, con, ext))
    return engines


def _check_agreement(engines):
    results = [
        (
            label,
            con.execute("SELECT g, s, n FROM q").sorted(),
            con.execute(RECOMPUTE).sorted(),
        )
        for label, con, _ in engines
    ]
    base = results[0][2]
    for label, got, want in results:
        assert want == base, "engines diverged on base data"
        assert got == want, f"{label} engine diverged from recompute"


def _execute_all(engines, sql, params=None):
    for _, con, _ in engines:
        con.execute(sql, params)


class _PhasedStream:
    """Deterministic DML generator with distinct signal regimes."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.statements = 0

    def uniform_inserts(self, engines, count: int):
        for _ in range(count):
            g = f"g{self.rng.randrange(12)}"
            _execute_all(
                engines, "INSERT INTO t VALUES (?, ?)",
                [g, self.rng.randint(-9, 9)],
            )
            self.statements += 1

    def skewed_inserts(self, engines, count: int):
        # ~85% of rows land on one hot group: the touched-group count
        # collapses while delta_rows stays high.
        for _ in range(count):
            hot = self.rng.random() < 0.85
            g = "hot" if hot else f"g{self.rng.randrange(12)}"
            _execute_all(
                engines, "INSERT INTO t VALUES (?, ?)",
                [g, self.rng.randint(1, 5)],
            )
            self.statements += 1

    def retraction_storm(self, engines, count: int):
        # Deletes dominate: the retraction-rate signal jumps bands.
        for _ in range(count):
            if self.rng.random() < 0.7:
                _execute_all(
                    engines, "DELETE FROM t WHERE g = ? AND v = ?",
                    [f"g{self.rng.randrange(12)}", self.rng.randint(-9, 9)],
                )
            else:
                _execute_all(
                    engines, "DELETE FROM t WHERE g = 'hot' AND v = ?",
                    [self.rng.randint(1, 5)],
                )
            self.statements += 1

    def mixed_churn(self, engines, count: int):
        for _ in range(count):
            roll = self.rng.random()
            if roll < 0.5:
                _execute_all(
                    engines, "INSERT INTO t VALUES (?, ?)",
                    [f"g{self.rng.randrange(20)}", self.rng.randint(-9, 9)],
                )
            elif roll < 0.8:
                _execute_all(
                    engines, "DELETE FROM t WHERE g = ? AND v = ?",
                    [f"g{self.rng.randrange(20)}", self.rng.randint(-9, 9)],
                )
            else:
                _execute_all(
                    engines, "UPDATE t SET v = ? WHERE g = ?",
                    [self.rng.randint(-9, 9), f"g{self.rng.randrange(20)}"],
                )
            self.statements += 1


@pytest.mark.parametrize("seed", [101, 202])
def test_four_engine_oracle_through_signal_phases(seed):
    engines = _engines()
    stream = _PhasedStream(seed)

    def run_phase(phase_fn, count, check_every=5):
        done = 0
        while done < count:
            chunk = min(check_every, count - done)
            phase_fn(engines, chunk)
            done += chunk
            _check_agreement(engines)

    run_phase(stream.uniform_inserts, 60)
    run_phase(stream.skewed_inserts, 60)
    run_phase(stream.retraction_storm, 50)
    run_phase(stream.mixed_churn, 60)
    assert stream.statements >= 200

    # The adaptive engine must actually have adapted: decisions were
    # recorded, more than one arm ran, and regimes were re-detected.
    adaptive_ext = next(ext for label, _, ext in engines if label == "adaptive")
    stats = adaptive_ext.refresh_stats("q")
    assert stats["decisions"], "adaptive engine recorded no decisions"
    assert stats["plan_switches"] >= 1, "planner never switched arms"
    arms = {d["plan"]["arm"] for d in stats["decisions"]}
    assert len(arms) >= 2, f"only one arm ever ran: {arms}"


@pytest.mark.parametrize(
    "mode", [PropagationMode.EAGER, PropagationMode.BATCH],
    ids=lambda m: m.value,
)
def test_four_engine_oracle_other_modes(mode):
    # Eager refreshes after every statement; batch defers to the
    # threshold — both must stay correct while the planner switches.
    engines = _engines(mode=mode, batch_size=8)
    stream = _PhasedStream(303)
    stream.uniform_inserts(engines, 30)
    _check_agreement(engines)
    stream.retraction_storm(engines, 25)
    _check_agreement(engines)
    stream.mixed_churn(engines, 30)
    _check_agreement(engines)
    assert stream.statements >= 85


def test_adaptive_agrees_on_minmax_views():
    """MIN/MAX views keep their step-2b extrema state across switches of
    the step-3 form — the retraction storm forces rescans mid-stream."""
    configs = [dict(), dict(adaptive=True, adaptive_epsilon=0.5)]
    cons = []
    for overrides in configs:
        con = Connection()
        load_ivm(
            con, CompilerFlags(mode=PropagationMode.LAZY, **overrides)
        )
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW m AS "
            "SELECT g, MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY g"
        )
        cons.append(con)
    rng = random.Random(77)
    recompute = "SELECT g, MIN(v), MAX(v) FROM t GROUP BY g"
    for step in range(120):
        if rng.random() < 0.65 or step < 20:
            params = [f"g{rng.randrange(6)}", rng.randint(-100, 100)]
            sql = "INSERT INTO t VALUES (?, ?)"
        else:
            # Delete extremes specifically: forces extrema retraction.
            params = [f"g{rng.randrange(6)}"]
            sql = (
                "DELETE FROM t WHERE g = ? AND (v > 80 OR v < -80)"
            )
        for con in cons:
            con.execute(sql, params)
        if step % 4 == 3:
            for con in cons:
                got = con.execute("SELECT g, lo, hi FROM m").sorted()
                want = con.execute(recompute).sorted()
                assert got == want, f"diverged at step {step}"
