"""Chaos oracle: randomized DML under seeded fault schedules.

The robustness milestone's acceptance bar.  Four chaos campaigns replay
seeded DML streams (the sales workload of the sharded oracle, plus a
single-table churn stream for the ingest queue) while a deterministic
:class:`~repro.core.faults.FaultPlan` injects failures at the four named
sites:

* ``shard.compute`` — worker exceptions (retryable and not) and latency
  spikes that blow ``worker_timeout``, exercising bounded retry, pool
  abandonment, and the degradation ladder;
* ``wal.append`` — hard errors and torn writes on the capture path (the
  base mutation survives; the delta is lost, so the watchers must
  self-heal through recompute);
* ``checkpoint.write`` — torn and failed checkpoint images (periodic
  checkpoints swallow the error; recovery must fall back to the last
  good image);
* ``queue.enqueue`` — admission faults plus genuine overflow against a
  tiny queue under each backpressure policy.

After every few statements each engine must equal the full recompute of
its view over its own base tables — whatever subset of faults fired, an
injected failure may cost refresh work but never correctness.  The
ladder campaign additionally asserts the structured ``demote``/``heal``
events, and the durability campaign finishes with a real
:meth:`Connection.recover` over the faulted directory.

Total randomized DML steps across the campaigns exceed 200 (asserted at
the bottom); every schedule is seeded, so failures replay exactly.
"""

from __future__ import annotations

import random

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm
from repro.core.faults import FaultPlan, FaultSpec
from repro.core.runtime import RUNG_PARALLEL, RUNG_UNSHARDED
from repro.errors import ReproError
from repro.workloads.generators import generate_sales_workload, zipf_group_keys

SHARDED_STEPS = 120
DURABILITY_STEPS = 60
QUEUE_STEPS_PER_POLICY = 30
LADDER_STEPS = 24
DAG_SHARD_STEPS = 40
DAG_DURABILITY_STEPS = 30

VIEW = (
    "CREATE MATERIALIZED VIEW sh AS "
    "SELECT c.region, COUNT(*) AS n, SUM(o.amount) AS revenue, "
    "MIN(o.amount) AS lo, MAX(o.amount) AS hi "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)
RECOMPUTE = (
    "SELECT c.region, COUNT(*), SUM(o.amount), MIN(o.amount), MAX(o.amount) "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)

GROUPS_VIEW = (
    "CREATE MATERIALIZED VIEW q AS "
    "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
)
GROUPS_RECOMPUTE = "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g"


def _build_sales_engine(**flag_overrides):
    """A connection with the join view over the seeded sales workload."""
    flag_overrides.setdefault("mode", PropagationMode.LAZY)
    con = Connection()
    ext = load_ivm(con, CompilerFlags(**flag_overrides))
    workload = generate_sales_workload(
        num_customers=40, num_orders=120, num_regions=6, seed=71
    )
    con.execute(workload.SCHEMA)
    customers = con.table("customers")
    for row in workload.customers:
        customers.insert(row, coerce=False)
    orders = con.table("orders")
    for row in workload.orders:
        orders.insert(row, coerce=False)
    con.execute(VIEW)
    return con, ext, workload


def _execute_chaos(con, sql, params=None) -> bool:
    """Run one DML statement, tolerating injected failures.

    Returns True when the statement raised an injected/typed error.  The
    base mutation has still been applied (capture and refresh run in
    AFTER hooks), so the oracle's ground truth — recompute over this
    connection's own base tables — stays valid either way."""
    try:
        if params is None:
            con.execute(sql)
        else:
            con.execute(sql, params)
        return False
    except ReproError:
        return True


def _assert_converged(con, view_select: str, recompute_sql: str) -> None:
    """The view must equal the recompute; reads retry past injected
    refresh failures (each failed attempt demotes/flags, the next one
    self-heals), and must converge within a handful of attempts."""
    got = None
    for _ in range(8):
        try:
            got = con.execute(view_select).sorted()
            break
        except ReproError:
            continue
    assert got is not None, "view read never survived the fault schedule"
    want = con.execute(recompute_sql).sorted()
    assert got == want, "view diverged from the recompute ground truth"


# ---------------------------------------------------------------------------
# Campaign 1: shard-worker chaos — exceptions, timeouts, retries, ladder
# ---------------------------------------------------------------------------


def test_sharded_worker_chaos_converges():
    """Parallel sharded refresh under worker exceptions and latency
    spikes: retryable faults replay on the retry budget, non-retryable
    and timed-out workers demote the ladder, and the view equals the
    recompute after every burst regardless."""
    plan = FaultPlan(seed=2024).add(
        FaultSpec("shard.compute", kind="error", probability=0.10, times=8)
    ).add(
        FaultSpec(
            "shard.compute", kind="error", probability=0.05, times=3,
            retryable=False,
        )
    ).add(
        # Sleeps past worker_timeout: the attempt is abandoned behind
        # the round token and retried on a fresh pool.
        FaultSpec(
            "shard.compute", kind="latency", latency=0.25,
            probability=0.04, times=2,
        )
    )
    con, ext, workload = _build_sales_engine(
        shard_count=4,
        parallel_refresh=True,
        worker_timeout=0.05,
        worker_retries=2,
        worker_backoff=0.001,
        fault_plan=plan,
    )
    rng = random.Random(93)
    picks = iter(
        int(key[1:])
        for key in zipf_group_keys(
            SHARDED_STEPS * 2, num_groups=40, skew=1.3, seed=94
        )
    )
    live = {row[0]: None for row in workload.orders}
    next_oid = workload.next_order_id()
    for step in range(1, SHARDED_STEPS + 1):
        roll = rng.random()
        if roll < 0.6 or not live:
            cust = workload.customers[next(picks)][0]
            _execute_chaos(
                con, "INSERT INTO orders VALUES (?, ?, ?, ?)",
                [next_oid, cust, "p", rng.randint(-200, 500)],
            )
            live[next_oid] = None
            next_oid += 1
        else:
            victim = rng.choice(sorted(live))
            del live[victim]
            _execute_chaos(con, "DELETE FROM orders WHERE oid = ?", [victim])
        if step % 5 == 0:
            _assert_converged(
                con, "SELECT region, n, revenue, lo, hi FROM sh", RECOMPUTE
            )
    assert plan.fired("shard.compute") > 0, "schedule never fired"
    stats = ext.view_state("sh").stats
    assert stats.events_of("refresh_failure"), "no refresh ever failed"
    assert stats.events_of("demote"), "failures never demoted the ladder"
    assert stats.events_of("recompute"), "self-heal never ran"
    # Quiet phase: the schedule is exhausted (every spec is times-capped),
    # so clean refreshes heal the ladder back to the full plan.
    state = ext.view_state("sh")
    for round_index in range(16):
        if state.ladder.rung == RUNG_PARALLEL:
            break
        con.execute(
            "INSERT INTO orders VALUES (?, ?, ?, ?)",
            [next_oid, workload.customers[0][0], "p", round_index],
        )
        next_oid += 1
        ext.refresh("sh")
    assert state.ladder.rung == RUNG_PARALLEL, "ladder never healed"
    assert stats.events_of("heal"), "heal left no structured event"
    _assert_converged(
        con, "SELECT region, n, revenue, lo, hi FROM sh", RECOMPUTE
    )


# ---------------------------------------------------------------------------
# Campaign 2: WAL / checkpoint I/O chaos, then a real recovery
# ---------------------------------------------------------------------------


def test_durability_io_chaos_converges_and_recovers(tmp_path):
    """Flaky WAL appends (hard + torn) and flaky checkpoint images under
    a randomized stream: the live engine stays convergent (lost captures
    self-heal through recompute), periodic checkpoint failures are
    contained, and recovering the faulted directory yields an engine
    whose views equal the recompute over the recovered base tables."""
    plan = FaultPlan(seed=7).add(
        FaultSpec("wal.append", kind="error", probability=0.10, times=5)
    ).add(
        FaultSpec("wal.append", kind="torn", probability=0.06, times=4)
    ).add(
        FaultSpec("checkpoint.write", kind="torn", probability=0.5, times=2)
    ).add(
        FaultSpec("checkpoint.write", kind="error", probability=0.4, times=2)
    )
    directory = tmp_path / "chaos-dur"
    con = Connection()
    ext = load_ivm(
        con,
        CompilerFlags(
            mode=PropagationMode.LAZY,
            durability=True,
            checkpoint_every=3,
            fault_plan=plan,
        ),
        durability_dir=directory,
    )
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
    con.execute(GROUPS_VIEW)
    rng = random.Random(29)
    for step in range(1, DURABILITY_STEPS + 1):
        if rng.random() < 0.75:
            _execute_chaos(
                con, "INSERT INTO t VALUES (?, ?)",
                [f"g{rng.randrange(8)}", float(rng.randint(-8, 8))],
            )
        else:
            _execute_chaos(
                con, "DELETE FROM t WHERE g = ? AND v = ?",
                [f"g{rng.randrange(8)}", float(rng.randint(-8, 8))],
            )
        if step % 5 == 0:
            _assert_converged(
                con, "SELECT g, s, n FROM q", GROUPS_RECOMPUTE
            )
    assert plan.fired("wal.append") > 0
    assert plan.fired("checkpoint.write") > 0
    # Torn WAL appends rolled the file back, so the log on disk has no
    # torn middle: a full scan must decode cleanly.
    from repro.storage.wal import wal_health

    health = wal_health(directory / "wal.log")
    assert health["valid"] and health["torn_tail_bytes"] == 0
    live_rows = con.execute("SELECT COUNT(*) FROM t").rows[0][0]
    ext.shutdown()
    # The recovered engine replays checkpoint + WAL: rows whose append
    # faulted never reached the log, so the recovered base may trail the
    # live one — but its views must equal ITS recompute exactly.
    recovered = Connection.recover(directory)
    recovered_rows = recovered.execute("SELECT COUNT(*) FROM t").rows[0][0]
    assert recovered_rows <= live_rows
    assert (
        recovered.execute("SELECT g, s, n FROM q").sorted()
        == recovered.execute(GROUPS_RECOMPUTE).sorted()
    )
    # And the recovered engine keeps working incrementally.
    recovered.execute("INSERT INTO t VALUES ('post', 1.0), ('post', 2.0)")
    assert (
        recovered.execute("SELECT g, s, n FROM q").sorted()
        == recovered.execute(GROUPS_RECOMPUTE).sorted()
    )


# ---------------------------------------------------------------------------
# Campaign 3: ingest-queue overflow chaos, one run per backpressure policy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("policy", ["block", "shed", "coalesce"])
def test_queue_overflow_chaos_converges(policy):
    """A churny stream against a deliberately tiny queue plus injected
    admission faults: every policy converges — block pays with inline
    drains, shed pays with typed rejections + recompute self-heal,
    coalesce annihilates opposite-sign churn in place."""
    plan = FaultPlan(seed=11).add(
        FaultSpec("queue.enqueue", kind="error", probability=0.2, times=4)
    )
    con = Connection()
    ext = load_ivm(
        con,
        CompilerFlags(
            mode=PropagationMode.LAZY,
            ingest_queue=True,
            queue_capacity=10,
            queue_policy=policy,
            queue_high_watermark=1.0,
            queue_low_watermark=0.5,
            fault_plan=plan,
        ),
    )
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
    con.execute(GROUPS_VIEW)
    rng = random.Random({"block": 101, "shed": 202, "coalesce": 303}[policy])
    shed_or_injected = 0
    for step in range(1, QUEUE_STEPS_PER_POLICY + 1):
        if rng.random() < 0.65:
            count = rng.randint(1, 6)
            values = ", ".join(
                f"('g{rng.randrange(4)}', {rng.randint(-5, 5)})"
                for _ in range(count)
            )
            failed = _execute_chaos(con, f"INSERT INTO t VALUES {values}")
        else:
            failed = _execute_chaos(
                con, "DELETE FROM t WHERE g = ?", [f"g{rng.randrange(4)}"]
            )
        shed_or_injected += failed
        if step % 5 == 0:
            _assert_converged(con, "SELECT g, s, n FROM q", GROUPS_RECOMPUTE)
    counters = ext.queue.counters
    if policy == "shed":
        assert counters["shed_batches"] > 0, "tiny queue never overflowed"
        assert shed_or_injected > 0
    if policy == "block":
        assert counters["inline_drains"] > 0, "blocked writer never drained"
    if policy == "coalesce":
        assert counters["coalesced_rows"] > 0, "churn never coalesced"
    assert plan.fired("queue.enqueue") > 0
    _assert_converged(con, "SELECT g, s, n FROM q", GROUPS_RECOMPUTE)


# ---------------------------------------------------------------------------
# Campaign 4: the degradation ladder demotes rung by rung, then heals back
# ---------------------------------------------------------------------------


def test_degradation_ladder_demotes_and_heals_deterministically():
    """Non-retryable worker faults, one armed per phase, walk the ladder
    down one rung per failure (parallel → serial → unsharded), every
    rung is visible as a structured ``demote`` event, and once the
    faults stop, consecutive clean refreshes emit ``heal`` events until
    the view is back on the full parallel plan — with the native states
    reseeded and the results still exact."""
    plan = FaultPlan(seed=3)
    con, ext, workload = _build_sales_engine(
        shard_count=2,
        parallel_refresh=True,
        degradation_heal_after=2,
        fault_plan=plan,
    )
    state = ext.view_state("sh")
    next_oid = workload.next_order_id()
    steps = 0

    def dml_and_refresh(expect_fail: bool) -> None:
        nonlocal next_oid, steps
        con.execute(
            "INSERT INTO orders VALUES (?, ?, ?, ?)",
            [next_oid, workload.customers[steps % 20][0], "p", steps * 3 - 20],
        )
        next_oid += 1
        steps += 1
        failed = False
        try:
            ext.refresh("sh")
        except ReproError:
            failed = True
        assert failed == expect_fail
        _assert_converged(
            con, "SELECT region, n, revenue, lo, hi FROM sh", RECOMPUTE
        )

    # Phase 1: one non-retryable fault demotes the parallel plan.
    plan.add(FaultSpec("shard.compute", kind="error", times=1, retryable=False))
    dml_and_refresh(expect_fail=True)
    assert state.ladder.rung == 1
    # Phase 2: the next fault hits the serial rung and demotes again.
    plan.add(FaultSpec("shard.compute", kind="error", times=1, retryable=False))
    dml_and_refresh(expect_fail=True)
    assert state.ladder.rung == RUNG_UNSHARDED
    # Phase 3: no faults armed — clean refreshes heal rung by rung, and
    # further cleans at the top stay there.
    while steps < LADDER_STEPS:
        dml_and_refresh(expect_fail=False)
    assert plan.fired("shard.compute") == 2
    stats = state.stats
    demotes = stats.events_of("demote")
    heals = stats.events_of("heal")
    assert [(e["from_rung"], e["to_rung"]) for e in demotes] == [(0, 1), (1, 2)]
    assert [(e["from_rung"], e["to_rung"]) for e in heals] == [(2, 1), (1, 0)]
    assert state.ladder.rung == RUNG_PARALLEL
    assert stats.degradation_rung == RUNG_PARALLEL
    assert state.ladder.demotions == 2 and state.ladder.heals == 2
    assert steps == LADDER_STEPS
    # The reseeded native states keep propagating exactly after the heal.
    con.execute(
        "INSERT INTO orders VALUES (?, ?, ?, ?)",
        [next_oid, workload.customers[1][0], "p", 999],
    )
    ext.refresh("sh")
    _assert_converged(
        con, "SELECT region, n, revenue, lo, hi FROM sh", RECOMPUTE
    )


# ---------------------------------------------------------------------------
# Campaign 5: faults at an INTERIOR node of a view-over-view DAG
# ---------------------------------------------------------------------------


def _dag_levels():
    """(view select, recompute over the upstream's stored table) per level."""
    return [
        ("SELECT cust_id, rev, n FROM by_cust",
         "SELECT cust_id, SUM(amount), COUNT(*) FROM orders GROUP BY cust_id"),
        ("SELECT region, revenue, nc FROM by_region",
         "SELECT c.region, SUM(o.rev), COUNT(*) "
         "FROM by_cust o JOIN customers c ON o.cust_id = c.cust_id "
         "GROUP BY c.region"),
        ("SELECT grand FROM grand_total",
         "SELECT SUM(revenue) FROM by_region"),
    ]


def _assert_dag_converged(con) -> None:
    """Read the leaf first (one read pulls the whole chain fresh in topo
    order, retrying past injected failures), then hold every level to
    the recompute of its own defining query over its upstream."""
    for _ in range(8):
        try:
            con.execute("SELECT grand FROM grand_total")
            break
        except ReproError:
            continue
    for view_select, recompute_sql in _dag_levels():
        _assert_converged(con, view_select, recompute_sql)


def test_dag_interior_node_chaos_converges_and_invalidates_downstream():
    """Worker faults aimed at the *interior* node of a 3-level DAG: only
    ``by_region`` is a join view, so every ``shard.compute`` firing lands
    mid-cascade.  A failed interior refresh must flag its dependents
    (``upstream_invalidate`` events + counter) instead of letting them
    consume a polluted feed, the ladder demotes and heals at the interior
    rung, and all three levels equal their recompute throughout."""
    plan = FaultPlan(seed=4096).add(
        FaultSpec("shard.compute", kind="error", probability=0.25, times=6)
    ).add(
        FaultSpec(
            "shard.compute", kind="error", probability=0.15, times=3,
            retryable=False,
        )
    )
    con, ext, workload = _build_sales_engine(
        shard_count=2,
        parallel_refresh=True,
        worker_retries=1,
        worker_backoff=0.001,
        degradation_heal_after=2,
        fault_plan=plan,
    )
    con.execute("DROP MATERIALIZED VIEW sh")
    con.execute(
        "CREATE MATERIALIZED VIEW by_cust AS "
        "SELECT cust_id, SUM(amount) AS rev, COUNT(*) AS n "
        "FROM orders GROUP BY cust_id"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW by_region AS "
        "SELECT c.region, SUM(o.rev) AS revenue, COUNT(*) AS nc "
        "FROM by_cust o JOIN customers c ON o.cust_id = c.cust_id "
        "GROUP BY c.region"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW grand_total AS "
        "SELECT SUM(revenue) AS grand FROM by_region"
    )
    rng = random.Random(57)
    live = {row[0]: None for row in workload.orders}
    next_oid = workload.next_order_id()
    for step in range(1, DAG_SHARD_STEPS + 1):
        if rng.random() < 0.6 or not live:
            cust = workload.customers[rng.randrange(40)][0]
            _execute_chaos(
                con, "INSERT INTO orders VALUES (?, ?, ?, ?)",
                [next_oid, cust, "p", rng.randint(-200, 500)],
            )
            live[next_oid] = None
            next_oid += 1
        else:
            victim = rng.choice(sorted(live))
            del live[victim]
            _execute_chaos(con, "DELETE FROM orders WHERE oid = ?", [victim])
        if step % 5 == 0:
            _assert_dag_converged(con)
    assert plan.fired("shard.compute") > 0, "schedule never fired"
    mid = ext.view_state("by_region")
    assert mid.stats.events_of("refresh_failure"), "interior never failed"
    assert mid.stats.events_of("demote"), "interior failures never demoted"
    # The failed interior refreshes flagged the leaf, visibly.
    leaf_stats = ext.view_state("grand_total").stats
    assert leaf_stats.upstream_invalidations > 0
    events = leaf_stats.events_of("upstream_invalidate")
    assert events and all(e["upstream"] == "by_region" for e in events)
    assert ext.refresh_stats("grand_total")["upstream_invalidations"] > 0
    # Heal phase: keep refreshing until the schedule (times-capped at 9
    # firings) runs dry, after which consecutive clean refreshes walk the
    # interior ladder back up — and the healed DAG still converges.
    for round_index in range(40):
        if mid.ladder.rung == RUNG_PARALLEL:
            break
        con.execute(
            "INSERT INTO orders VALUES (?, ?, ?, ?)",
            [next_oid, workload.customers[0][0], "p", round_index],
        )
        next_oid += 1
        try:
            ext.refresh("grand_total")
        except ReproError:
            continue
    assert mid.ladder.rung == RUNG_PARALLEL, "interior ladder never healed"
    assert mid.stats.events_of("heal")
    _assert_dag_converged(con)


def test_dag_durability_chaos_recovers_all_levels(tmp_path):
    """WAL-append and queue-admission faults under a 3-level chain with
    durability on: the live DAG stays convergent at every level, and
    recovering the faulted directory rebuilds the whole chain — each
    recovered level equals the recompute over the recovered base."""
    plan = FaultPlan(seed=19).add(
        FaultSpec("wal.append", kind="error", probability=0.08, times=4)
    ).add(
        FaultSpec("wal.append", kind="torn", probability=0.05, times=3)
    ).add(
        FaultSpec("queue.enqueue", kind="error", probability=0.15, times=3)
    )
    directory = tmp_path / "chaos-dag"
    con = Connection()
    ext = load_ivm(
        con,
        CompilerFlags(
            mode=PropagationMode.LAZY,
            durability=True,
            checkpoint_every=4,
            ingest_queue=True,
            queue_capacity=12,
            queue_policy="shed",
            fault_plan=plan,
        ),
        durability_dir=directory,
    )
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
    con.execute(GROUPS_VIEW)
    con.execute(
        "CREATE MATERIALIZED VIEW q2 AS SELECT g, s FROM q WHERE s > 0"
    )
    con.execute(
        "CREATE MATERIALIZED VIEW q3 AS SELECT g, s FROM q2 WHERE s > 10"
    )
    levels = [
        ("SELECT g, s, n FROM q", GROUPS_RECOMPUTE),
        ("SELECT g, s FROM q2", "SELECT g, s FROM q WHERE s > 0"),
        ("SELECT g, s FROM q3", "SELECT g, s FROM q2 WHERE s > 10"),
    ]
    rng = random.Random(23)
    for step in range(1, DAG_DURABILITY_STEPS + 1):
        if rng.random() < 0.75:
            _execute_chaos(
                con, "INSERT INTO t VALUES (?, ?)",
                [f"g{rng.randrange(6)}", float(rng.randint(-8, 12))],
            )
        else:
            _execute_chaos(
                con, "DELETE FROM t WHERE g = ? AND v = ?",
                [f"g{rng.randrange(6)}", float(rng.randint(-8, 12))],
            )
        if step % 5 == 0:
            for _ in range(8):
                try:
                    con.execute("SELECT g, s FROM q3")
                    break
                except ReproError:
                    continue
            for view_select, recompute_sql in levels:
                _assert_converged(con, view_select, recompute_sql)
    assert plan.fired("wal.append") > 0
    ext.shutdown()
    recovered = Connection.recover(directory)
    for view_select, recompute_sql in levels:
        assert (
            recovered.execute(view_select).sorted()
            == recovered.execute(recompute_sql).sorted()
        ), f"recovered {view_select!r} diverged"
    # The recovered DAG keeps cascading incrementally.
    recovered.execute("INSERT INTO t VALUES ('post', 50.0), ('post', 2.0)")
    for view_select, recompute_sql in levels:
        assert (
            recovered.execute(view_select).sorted()
            == recovered.execute(recompute_sql).sorted()
        )


def test_chaos_step_budget():
    """The milestone requires 200+ randomized DML steps under fault
    schedules across the campaigns above."""
    total = (
        SHARDED_STEPS
        + DURABILITY_STEPS
        + 3 * QUEUE_STEPS_PER_POLICY
        + LADDER_STEPS
        + DAG_SHARD_STEPS
        + DAG_DURABILITY_STEPS
    )
    assert total >= 200
