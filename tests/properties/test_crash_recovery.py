"""Crash-recovery oracle: kill the durability files anywhere, recover,
and the views must equal a full recompute over the recovered bases.

One reference run builds a durability directory (WAL + several
checkpoints) under a mixed workload — joins, MIN/MAX with dates,
liveness-counted groups, inserts/updates/deletes.  Each oracle iteration
then simulates a crash by copying the directory and truncating the WAL
at a random byte offset (or mangling the newest checkpoint, for
mid-checkpoint kills), recovers with :meth:`Connection.recover`, and
checks:

* every materialized view equals the full recompute of its query over
  the *recovered* base tables — whatever prefix of the log survived,
  the state is consistent;
* the torn final record is physically truncated off the WAL and never
  replayed: recovering at a mid-record offset yields identical state to
  recovering at the last record boundary before it;
* a corrupt newest checkpoint falls back to the previous one, and the
  intact WAL replays the difference — same final state as the pristine
  recovery.

Amounts are multiples of 0.25 (exact in binary floating point), so the
incrementally maintained sums match the recompute bit-for-bit and the
oracle never trips on accumulation order.

The kill-point count (WAL offsets + checkpoint kills) is asserted to be
at least 50 at the bottom.
"""

from __future__ import annotations

import random
import shutil
import struct

import pytest

from repro.core.flags import CompilerFlags
from repro.engine.connection import Connection
from repro.extension.ivm_extension import load_ivm
from repro.storage.wal import HEADER_SIZE, MAGIC

WAL_KILL_POINTS = 48
CHECKPOINT_KILL_POINTS = 8

VIEW_QUERIES = {
    "rev": (
        "SELECT c.region, SUM(o.amount) AS s, COUNT(*) AS n "
        "FROM orders o JOIN customers c ON o.cust = c.id GROUP BY c.region"
    ),
    "mm": (
        "SELECT cust, MIN(amount) AS lo, MAX(amount) AS hi, MIN(day) AS d0 "
        "FROM orders GROUP BY cust"
    ),
    "daily": "SELECT day, SUM(amount) AS s FROM orders GROUP BY day",
}


def _quarter(rng: random.Random, lo: float, hi: float) -> float:
    return round(rng.uniform(lo, hi) * 4) / 4


def _build_reference(directory) -> None:
    """Run the reference workload into ``directory`` (WAL + checkpoints)."""
    flags = CompilerFlags(durability=True, checkpoint_every=3)
    con = Connection()
    load_ivm(con, flags=flags, durability_dir=directory)
    con.execute(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, "
        "amount DOUBLE, day DATE)"
    )
    con.execute("CREATE TABLE customers (id INTEGER PRIMARY KEY, region VARCHAR)")
    for name, query in VIEW_QUERIES.items():
        con.execute(f"CREATE MATERIALIZED VIEW {name} AS {query}")
    con.execute("INSERT INTO customers VALUES (1,'eu'), (2,'us'), (3,'apac')")
    rng = random.Random(20240807)
    next_id = 1
    live: list[int] = []
    for _ in range(12):
        for _ in range(rng.randrange(1, 4)):
            cust = rng.randrange(1, 4)
            amount = _quarter(rng, -50, 150)
            day = f"2024-0{rng.randrange(1, 7)}-{rng.randrange(10, 28)}"
            con.execute(
                f"INSERT INTO orders VALUES "
                f"({next_id}, {cust}, {amount}, '{day}')"
            )
            live.append(next_id)
            next_id += 1
        if live and rng.random() < 0.5:
            victim = live.pop(rng.randrange(len(live)))
            con.execute(f"DELETE FROM orders WHERE id = {victim}")
        if live and rng.random() < 0.5:
            target = rng.choice(live)
            con.execute(
                f"UPDATE orders SET amount = {_quarter(rng, 0, 99)}, "
                f"cust = {rng.randrange(1, 4)} WHERE id = {target}"
            )
        if rng.random() < 0.7:
            # Lazy refresh (drives note_refresh -> periodic checkpoints).
            for name in VIEW_QUERIES:
                con.execute(f"SELECT * FROM {name}")
    # Leave a tail of captured-but-unrefreshed deltas in the WAL.
    con.execute("INSERT INTO orders VALUES (9001, 1, 42.5, '2024-06-15')")
    con.execute("DELETE FROM orders WHERE cust = 3")


def _record_boundaries(wal_path) -> list[int]:
    """Byte offsets of every complete-record end in the WAL file,
    parsed independently of the code under test."""
    data = wal_path.read_bytes()
    assert data[:HEADER_SIZE] == MAGIC
    boundaries = [HEADER_SIZE]
    pos = HEADER_SIZE
    while pos + 8 <= len(data):
        (body_len,) = struct.unpack_from(">I", data, pos)
        end = pos + 8 + body_len
        if end > len(data):
            break
        boundaries.append(end)
        pos = end
    return boundaries


def _recover(directory) -> Connection:
    return Connection.recover(directory)


def _state_fingerprint(con: Connection) -> dict:
    """Sorted rows of every base table and view."""
    out = {}
    for table in ("orders", "customers", *VIEW_QUERIES):
        out[table] = sorted(con.execute(f"SELECT * FROM {table}").rows)
    return out


def _assert_views_consistent(con: Connection) -> None:
    for name, query in VIEW_QUERIES.items():
        recomputed = sorted(con.execute(query).rows)
        width = len(recomputed[0]) if recomputed else None
        stored = sorted(
            tuple(row[:width])
            for row in con.execute(f"SELECT * FROM {name}").rows
        )
        assert stored == recomputed, (
            f"view {name} diverged from recompute after recovery:\n"
            f"  stored     = {stored}\n  recomputed = {recomputed}"
        )


@pytest.fixture(scope="module")
def reference_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("durability-ref")
    _build_reference(directory)
    return directory


def _crash_copy(reference_dir, tmp_path, name):
    target = tmp_path / name
    shutil.copytree(reference_dir, target)
    return target


def test_wal_kill_points(reference_dir, tmp_path):
    """Truncate the WAL at random byte offsets and recover."""
    wal_path = reference_dir / "wal.log"
    size = wal_path.stat().st_size
    boundaries = _record_boundaries(wal_path)
    assert len(boundaries) > 5, "workload produced too few WAL records"
    rng = random.Random(0xC0FFEE)
    offsets = sorted({rng.randrange(0, size + 1) for _ in range(WAL_KILL_POINTS)})
    boundary_states: dict[int, dict] = {}
    for i, offset in enumerate(offsets):
        crash = _crash_copy(reference_dir, tmp_path, f"kill-{i}")
        wal = crash / "wal.log"
        with open(wal, "r+b") as handle:
            handle.truncate(offset)
        con = _recover(crash)
        _assert_views_consistent(con)
        # The torn tail is physically truncated (a sub-header stump is
        # rewritten as a fresh, empty log).
        floor = max((b for b in boundaries if b <= offset), default=0)
        assert wal.stat().st_size == max(floor, HEADER_SIZE)
        # A mid-record kill equals the kill at the boundary before it:
        # the half-written record is never replayed.
        if floor not in boundary_states:
            ref = _crash_copy(reference_dir, tmp_path, f"boundary-{floor}")
            with open(ref / "wal.log", "r+b") as handle:
                handle.truncate(floor)
            boundary_states[floor] = _state_fingerprint(_recover(ref))
            shutil.rmtree(ref)
        assert _state_fingerprint(con) == boundary_states[floor]
        shutil.rmtree(crash)


def test_checkpoint_kill_points(reference_dir, tmp_path):
    """Corrupt/truncate the newest checkpoint; recovery must fall back to
    the previous one and replay the WAL difference — same final state as
    the pristine recovery."""
    want = _state_fingerprint(_recover(_crash_copy(reference_dir, tmp_path, "p")))
    checkpoints = sorted(reference_dir.glob("checkpoint-*.ckpt"))
    assert len(checkpoints) >= 2, "workload produced too few checkpoints"
    newest = checkpoints[-1]
    size = newest.stat().st_size
    rng = random.Random(0xBADC0DE)
    for i in range(CHECKPOINT_KILL_POINTS):
        crash = _crash_copy(reference_dir, tmp_path, f"ckpt-kill-{i}")
        victim = crash / newest.name
        if i % 2 == 0:
            with open(victim, "r+b") as handle:
                handle.truncate(rng.randrange(0, size))
        else:
            data = bytearray(victim.read_bytes())
            data[rng.randrange(0, size)] ^= 0xFF
            victim.write_bytes(bytes(data))
        con = _recover(crash)
        _assert_views_consistent(con)
        assert _state_fingerprint(con) == want
        shutil.rmtree(crash)


def test_post_recovery_rounds(reference_dir, tmp_path):
    """Recovered connections keep maintaining the views correctly, and
    the post-recovery lineage survives its own crash."""
    crash = _crash_copy(reference_dir, tmp_path, "continue")
    con = _recover(crash)
    con.execute("INSERT INTO orders VALUES (9100, 2, -3.5, '2024-01-02')")
    con.execute("UPDATE orders SET amount = 0.25 WHERE id = 9001")
    con.execute("DELETE FROM orders WHERE cust = 2")
    _assert_views_consistent(con)
    con2 = _recover(_crash_copy(crash, tmp_path, "continue-2"))
    _assert_views_consistent(con2)


def test_kill_point_budget():
    assert WAL_KILL_POINTS + CHECKPOINT_KILL_POINTS >= 50
