"""Property tests of the SQL engine against Python-computed oracles.

The IVM equivalence tests trust the engine to compute GROUP BY queries
correctly; these tests discharge that trust by checking the engine's
aggregation, filtering and arithmetic against direct Python computation
over the same rows.
"""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro import Connection

_rows = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", None]),
        st.one_of(st.none(), st.integers(-100, 100)),
    ),
    max_size=30,
)


def load(rows) -> Connection:
    con = Connection()
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
    table = con.table("t")
    for row in rows:
        table.insert(row, coerce=False)
    return con


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_group_by_aggregates_match_python(rows):
    con = load(rows)
    got = set(
        con.execute(
            "SELECT g, SUM(v), COUNT(v), COUNT(*), MIN(v), MAX(v) FROM t GROUP BY g"
        ).rows
    )
    groups: dict = defaultdict(list)
    for g, v in rows:
        groups[g].append(v)
    want = set()
    for g, values in groups.items():
        present = [v for v in values if v is not None]
        want.add(
            (
                g,
                sum(present) if present else None,
                len(present),
                len(values),
                min(present) if present else None,
                max(present) if present else None,
            )
        )
    assert got == want


@settings(max_examples=60, deadline=None)
@given(_rows, st.integers(-50, 50))
def test_filter_matches_python(rows, threshold):
    con = load(rows)
    got = sorted(
        con.execute("SELECT v FROM t WHERE v > ?", [threshold]).rows
    )
    want = sorted((v,) for _, v in rows if v is not None and v > threshold)
    assert got == want


@settings(max_examples=60, deadline=None)
@given(_rows)
def test_arithmetic_projection_matches_python(rows):
    con = load(rows)
    got = con.execute("SELECT v * 2 + 1 FROM t").rows
    want = [(None if v is None else v * 2 + 1,) for _, v in rows]
    assert sorted(got, key=repr) == sorted(want, key=repr)


@settings(max_examples=40, deadline=None)
@given(_rows, _rows)
def test_inner_join_matches_python(left_rows, right_rows):
    con = Connection()
    con.execute("CREATE TABLE l (g VARCHAR, v INTEGER)")
    con.execute("CREATE TABLE r (g VARCHAR, w INTEGER)")
    for row in left_rows:
        con.table("l").insert(row, coerce=False)
    for row in right_rows:
        con.table("r").insert(row, coerce=False)
    got = sorted(
        con.execute("SELECT l.v, r.w FROM l JOIN r ON l.g = r.g").rows,
        key=repr,
    )
    want = sorted(
        (
            (lv, rw)
            for lg, lv in left_rows
            for rg, rw in right_rows
            if lg is not None and lg == rg
        ),
        key=repr,
    )
    assert got == want


@settings(max_examples=40, deadline=None)
@given(_rows)
def test_distinct_union_matches_python(rows):
    con = load(rows)
    got = set(con.execute("SELECT DISTINCT g FROM t").rows)
    assert got == {(g,) for g, _ in rows}
    doubled = con.execute("SELECT g FROM t UNION SELECT g FROM t").rows
    assert set(doubled) == {(g,) for g, _ in rows}
    assert len(doubled) == len(set(doubled))


@settings(max_examples=40, deadline=None)
@given(_rows)
def test_order_by_matches_python(rows):
    con = load(rows)
    got = [v for (v,) in con.execute("SELECT v FROM t ORDER BY v").rows]
    present = sorted(v for _, v in rows if v is not None)
    nulls = [None] * sum(1 for _, v in rows if v is None)
    assert got == present + nulls  # NULLS LAST ascending
