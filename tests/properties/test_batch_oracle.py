"""Differential-testing harness: recompute vs. SQL vs. mixed vs. native.

Randomized DML scripts (seeded, from :mod:`repro.workloads.generators`)
are replayed through three propagation engines for the same view:

(a) **pure SQL** — the compiled script end to end
    (``batch_kernels=False``), the row-at-a-time baseline;
(b) **mixed** — native step 1 (vectorized Z-set kernels, ART-indexed join
    state) with SQL steps 2–4 (``native_steps=(1,)``), the first batching
    milestone's shape;
(c) **full native** — the complete ``NativeStep`` pipeline: signed-collapse
    upsert, exact liveness delete, in-memory truncation (the default).

After *every* batch all three must agree with each other and with the
full recompute of the view query (the specification).  The scripts cover
all three propagation modes — eager, lazy, and batch — and total well
over the 200 randomized DML steps the milestone requires (asserted
explicitly at the bottom).
"""

from __future__ import annotations

import random

import pytest

from repro import (
    CompilerFlags,
    Connection,
    MaterializationStrategy,
    PropagationMode,
    load_ivm,
)
from repro.workloads import generate_change_stream, generate_groups_rows
from repro.workloads.generators import generate_sales_workload

GROUPS_VIEW = (
    "CREATE MATERIALIZED VIEW q AS "
    "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) AS n "
    "FROM groups GROUP BY group_index"
)
GROUPS_RECOMPUTE = (
    "SELECT group_index, SUM(group_value), COUNT(*) "
    "FROM groups GROUP BY group_index"
)

JOIN_VIEW = (
    "CREATE MATERIALIZED VIEW rev AS "
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)
JOIN_RECOMPUTE = (
    "SELECT c.region, SUM(o.amount), COUNT(*) "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)

ALL_MODES = [PropagationMode.EAGER, PropagationMode.LAZY, PropagationMode.BATCH]

# (flag overrides, expected status) per engine: pure SQL / mixed / native.
ENGINE_CONFIGS = [
    ("sql", dict(batch_kernels=False)),
    ("mixed", dict(batch_kernels=True, native_steps=(1,))),
    ("native", dict(batch_kernels=True)),
]


def _engines(schema_fn, view_sql, mode=PropagationMode.LAZY):
    """Three IVM engines (SQL / mixed / full native) over identical data."""
    engines = []
    for label, overrides in ENGINE_CONFIGS:
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=mode, **overrides))
        schema_fn(con)
        con.execute(view_sql)
        engines.append((label, con, ext))
    # The harness is only meaningful if the engines actually take the
    # three distinct propagation paths.
    by_label = {label: ext for label, _, ext in engines}
    assert by_label["sql"].status()[0]["native_steps"] == []
    assert by_label["mixed"].status()[0]["native_steps"] == ["step1"]
    native_steps = by_label["native"].status()[0]["native_steps"]
    assert "step2" in native_steps and "step3" in native_steps
    assert "step4" in native_steps
    return [con for _, con, _ in engines]


def _check_agreement(cons, view_name: str, columns: str, recompute_sql: str):
    """Every engine == its own recompute == every other engine (querying
    the view refreshes it under the lazy/batch policies)."""
    results = [
        (
            con.execute(f"SELECT {columns} FROM {view_name}").sorted(),
            con.execute(recompute_sql).sorted(),
        )
        for con in cons
    ]
    recomputes = [want for _, want in results]
    assert all(want == recomputes[0] for want in recomputes), (
        "engines diverged on base data"
    )
    for (label, _), (got, want) in zip(ENGINE_CONFIGS, results):
        assert got == want, f"{label} path diverged from recompute"


@pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
def test_groups_three_way_oracle(mode):
    """Single-table SUM/COUNT view over a mixed insert/delete stream, in
    every propagation mode."""
    initial = generate_groups_rows(300, num_groups=20, seed=9)

    def schema(con: Connection) -> None:
        con.execute(
            "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
        )
        table = con.table("groups")
        for row in initial:
            table.insert(row, coerce=False)

    cons = _engines(schema, GROUPS_VIEW, mode=mode)

    steps = 0
    stream = generate_change_stream(
        initial, batch_size=2, batches=35, num_groups=20, seed=13
    )
    for batch in stream:
        for row in batch.inserts:
            for con in cons:
                con.execute("INSERT INTO groups VALUES (?, ?)", list(row))
            steps += 1
        for row in batch.deletes:
            for con in cons:
                con.execute(
                    "DELETE FROM groups WHERE group_index = ? AND group_value = ?",
                    list(row),
                )
            steps += 1
        _check_agreement(
            cons, "q", "group_index, total_value, n", GROUPS_RECOMPUTE
        )
    assert steps >= 70


def test_join_three_way_oracle():
    """Two-table join-aggregation view: the ART-indexed state path for
    step 1 plus the native upsert/liveness/truncate steps."""
    workload = generate_sales_workload(
        num_customers=30, num_orders=200, num_regions=5, seed=23
    )

    def schema(con: Connection) -> None:
        con.execute(workload.SCHEMA)
        customers = con.table("customers")
        for row in workload.customers:
            customers.insert(row, coerce=False)
        orders = con.table("orders")
        for row in workload.orders:
            orders.insert(row, coerce=False)

    cons = _engines(schema, JOIN_VIEW)

    rng = random.Random(37)
    live_orders = [row[0] for row in workload.orders]
    next_oid = workload.next_order_id()
    next_cust = len(workload.customers)
    steps = 0
    for _ in range(90):
        roll = rng.random()
        if roll < 0.5 or not live_orders:
            # Insert an order (sometimes for a brand-new customer).
            if rng.random() < 0.15:
                cust = f"cust_{next_cust:05d}"
                next_cust += 1
                region = rng.choice(workload.regions)
                for con in cons:
                    con.execute(
                        "INSERT INTO customers VALUES (?, ?)", [cust, region]
                    )
                steps += 1
            else:
                cust = workload.customers[
                    rng.randrange(len(workload.customers))
                ][0]
            oid = next_oid
            next_oid += 1
            amount = rng.randint(1, 500)
            for con in cons:
                con.execute(
                    "INSERT INTO orders VALUES (?, ?, ?, ?)",
                    [oid, cust, "p", amount],
                )
            live_orders.append(oid)
            steps += 1
        elif roll < 0.85:
            victim = live_orders.pop(rng.randrange(len(live_orders)))
            for con in cons:
                con.execute("DELETE FROM orders WHERE oid = ?", [victim])
            steps += 1
        else:
            # Update an order's amount (captured as delete+insert).
            target = live_orders[rng.randrange(len(live_orders))]
            amount = rng.randint(1, 500)
            for con in cons:
                con.execute(
                    "UPDATE orders SET amount = ? WHERE oid = ?",
                    [amount, target],
                )
            steps += 1
        if steps % 3 == 0:
            _check_agreement(cons, "rev", "region, revenue, n", JOIN_RECOMPUTE)
    _check_agreement(cons, "rev", "region, revenue, n", JOIN_RECOMPUTE)
    assert steps >= 60


def test_float_sums_agree_given_precise_liveness():
    """Floating-point SUM views: the batch path consolidates before
    summing while SQL sums each sign partition separately, so float
    rounding may differ — but with a COUNT(*) liveness column (the
    precise step-3 form) group membership, counts, and recompute-level
    values all agree across all three engines.  This pins the documented
    equivalence boundary (docs/batching.md)."""
    rng = random.Random(51)

    def schema(con: Connection) -> None:
        con.execute("CREATE TABLE t (k VARCHAR, w DOUBLE)")

    view = (
        "CREATE MATERIALIZED VIEW f AS "
        "SELECT k, SUM(w) AS s, COUNT(*) AS n FROM t GROUP BY k"
    )
    cons = _engines(schema, view)
    live: list[tuple[str, float]] = []
    for step in range(60):
        if rng.random() < 0.6 or not live:
            row = (rng.choice("ab"), rng.uniform(-1, 1))
            live.append(row)
            for con in cons:
                con.execute("INSERT INTO t VALUES (?, ?)", list(row))
        else:
            row = live.pop(rng.randrange(len(live)))
            for con in cons:
                con.execute(
                    "DELETE FROM t WHERE k = ? AND w = ?", list(row)
                )
        results = [con.execute("SELECT k, s, n FROM f").sorted() for con in cons]
        # Group membership and counts are exact; float sums agree to
        # within accumulated rounding of the different summation orders.
        memberships = [[(k, n) for k, _, n in rows] for rows in results]
        assert all(m == memberships[0] for m in memberships)
        for rows in results[1:]:
            for (_, s1, _), (_, s2, _) in zip(results[0], rows):
                assert abs(s1 - s2) < 1e-9


def test_sum_only_liveness_exact_cancellation():
    """The step-3 fix: sum-only views (no stored liveness column) delete
    groups by exact weighted-count cancellation on the native pipeline.

    The paper's SQL fallback tests ``sum = 0``, which (a) deletes a live
    group whose values genuinely sum to zero and (b) keeps a dead group
    whose float sum carries residue.  The native pipeline matches the
    recompute specification in both cases; the pure-SQL engine keeps the
    paper's behaviour, which this test pins as the documented boundary.
    """

    def schema(con: Connection) -> None:
        con.execute("CREATE TABLE t (k VARCHAR, w DOUBLE)")

    view = "CREATE MATERIALIZED VIEW f AS SELECT k, SUM(w) AS s FROM t GROUP BY k"
    con_sql, _, con_native = _engines(schema, view)
    for con in (con_sql, con_native):
        # (a) live group, genuine zero sum.
        con.execute("INSERT INTO t VALUES ('zero', 5.0), ('zero', -5.0)")
        # (b) dead group, float-residue sum (0.1 + 0.2 - 0.3 != 0.0).
        con.execute("INSERT INTO t VALUES ('residue', 0.1), ('residue', 0.2)")
        con.execute("DELETE FROM t WHERE k = 'residue' AND w = 0.1")
        con.execute("DELETE FROM t WHERE k = 'residue' AND w = 0.2")

    recompute = "SELECT k, SUM(w) FROM t GROUP BY k"
    want = con_native.execute(recompute).sorted()
    got_native = con_native.execute("SELECT k, s FROM f").sorted()
    assert got_native == want == [("zero", 0.0)]
    # The paper's fallback deletes the zero-sum group (and would keep a
    # residue-carrying dead one): bug-compatible SQL, exact native.
    got_sql = con_sql.execute("SELECT k, s FROM f").sorted()
    assert got_sql == []


def test_combined_scripts_exceed_two_hundred_steps():
    """The milestone's acceptance bar: the randomized scripts above replay
    ≥ 200 DML steps in total (per engine trio).  Recomputed here so the
    bound is explicit and breaks loudly if someone shrinks the workloads."""
    groups_steps = sum(
        batch.size
        for batch in generate_change_stream(
            generate_groups_rows(300, num_groups=20, seed=9),
            batch_size=2, batches=35, num_groups=20, seed=13,
        )
    )
    join_steps = 90  # lower bound: each loop iteration issues ≥ 1 DML
    # The groups stream replays once per propagation mode.
    assert groups_steps * len(ALL_MODES) + join_steps >= 200


MINMAX_VIEW = (
    "CREATE MATERIALIZED VIEW mm AS "
    "SELECT group_index, MIN(group_value) AS lo, MAX(group_value) AS hi, "
    "COUNT(*) AS n FROM groups GROUP BY group_index"
)
MINMAX_RECOMPUTE = (
    "SELECT group_index, MIN(group_value), MAX(group_value), COUNT(*) "
    "FROM groups GROUP BY group_index"
)

# The MIN/MAX oracle adds a fourth engine: full native but with the
# step-2b rescan kept on SQL (native_minmax_rescan=False), so the
# persistent extrema state is differentially tested against the paper's
# base-table rescan as well as against pure SQL and recompute.
MINMAX_ENGINE_CONFIGS = ENGINE_CONFIGS + [
    ("native_sql_rescan", dict(batch_kernels=True, native_minmax_rescan=False)),
]


def test_minmax_retraction_heavy_oracle():
    """MIN/MAX view under a retraction-heavy schedule that repeatedly
    deletes the current extrema (the non-invertible case): the native
    rescan answered from the extrema state must agree with the SQL
    rescan, the pure-SQL script, and the recompute after every batch."""
    rng = random.Random(77)

    def schema(con: Connection) -> None:
        con.execute(
            "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
        )

    cons = []
    for label, overrides in MINMAX_ENGINE_CONFIGS:
        con = Connection()
        ext = load_ivm(
            con, CompilerFlags(mode=PropagationMode.LAZY, **overrides)
        )
        schema(con)
        con.execute(MINMAX_VIEW)
        if label == "native":
            assert "step2b" in ext.status()[0]["native_steps"]
        if label == "native_sql_rescan":
            assert "step2b" not in ext.status()[0]["native_steps"]
        cons.append(con)

    live: list[tuple[str, int]] = []
    steps = 0
    for round_index in range(45):
        # Deletion-heavy: ~60% deletes once rows exist, biased toward the
        # current extremum of a random group so retraction repair is the
        # dominant code path.
        if live and rng.random() < 0.6:
            group = rng.choice(sorted({g for g, _ in live}))
            members = [row for row in live if row[0] == group]
            extreme = max(members, key=lambda row: row[1]) if (
                rng.random() < 0.5
            ) else min(members, key=lambda row: row[1])
            victim = extreme if rng.random() < 0.7 else rng.choice(members)
            live.remove(victim)
            for con in cons:
                con.execute(
                    "DELETE FROM groups "
                    "WHERE group_index = ? AND group_value = ?",
                    list(victim),
                )
        else:
            row = (f"g{rng.randrange(6)}", rng.randint(-50, 50))
            live.append(row)
            for con in cons:
                con.execute("INSERT INTO groups VALUES (?, ?)", list(row))
        steps += 1
        if steps % 2 == 0 or round_index == 44:
            results = [
                (
                    con.execute(
                        "SELECT group_index, lo, hi, n FROM mm"
                    ).sorted(),
                    con.execute(MINMAX_RECOMPUTE).sorted(),
                )
                for con in cons
            ]
            for (label, _), (got, want) in zip(
                MINMAX_ENGINE_CONFIGS, results
            ):
                assert got == want, f"{label} diverged from recompute"
    assert steps >= 45


# ---------------------------------------------------------------------------
# Strategy oracle: UNION-regroup / full-outer-join step 2 as native kernels
# ---------------------------------------------------------------------------

# Per strategy, three engines: the pure-SQL script, the native pipeline
# with the strategy's step-2 kernel disabled (SQL table rebuild between
# native steps 1/3/4), and the fully-native pipeline — so each new step-2
# kernel is differentially tested against its own SQL form as well as
# against the end-to-end SQL script and the recompute.
STRATEGY_ENGINE_CONFIGS = {
    MaterializationStrategy.UNION_REGROUP: [
        ("sql", dict(batch_kernels=False)),
        ("native_sql_step2", dict(native_union_step2=False)),
        ("native", dict()),
    ],
    MaterializationStrategy.FULL_OUTER_JOIN: [
        ("sql", dict(batch_kernels=False)),
        ("native_sql_step2", dict(native_foj_step2=False)),
        ("native", dict()),
    ],
}

STRATEGY_VIEW = (
    "CREATE MATERIALIZED VIEW q AS "
    "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) AS n, "
    "AVG(group_value) AS a FROM groups GROUP BY group_index"
)
STRATEGY_RECOMPUTE = (
    "SELECT group_index, SUM(group_value), COUNT(*), AVG(group_value) "
    "FROM groups GROUP BY group_index"
)

# The strategy streams must total 200+ randomized DML steps (the
# tentpole's acceptance bar); asserted explicitly below.
STRATEGY_STREAM = dict(batch_size=2, batches=50, num_groups=12, seed=29)


def _strategy_stream_steps() -> int:
    initial = generate_groups_rows(200, num_groups=12, seed=17)
    return sum(
        batch.size
        for batch in generate_change_stream(initial, **STRATEGY_STREAM)
    )


@pytest.mark.parametrize(
    "strategy", sorted(STRATEGY_ENGINE_CONFIGS, key=lambda s: s.value),
    ids=lambda s: s.value,
)
def test_strategy_step2_three_way_oracle(strategy):
    """UNION-regroup and full-outer-join views over a mixed insert/delete
    stream (including group kills and rebirths): native step-2 kernel vs
    its SQL rebuild vs the pure-SQL script vs recompute, after every
    batch."""
    initial = generate_groups_rows(200, num_groups=12, seed=17)

    def schema(con: Connection) -> None:
        con.execute(
            "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
        )
        table = con.table("groups")
        for row in initial:
            table.insert(row, coerce=False)

    cons = []
    for label, overrides in STRATEGY_ENGINE_CONFIGS[strategy]:
        con = Connection()
        ext = load_ivm(
            con,
            CompilerFlags(
                mode=PropagationMode.LAZY, strategy=strategy, **overrides
            ),
        )
        schema(con)
        con.execute(STRATEGY_VIEW)
        native = ext.status()[0]["native_steps"]
        if label == "sql":
            assert native == []
        elif label == "native_sql_step2":
            assert "step2" not in native and "step1" in native
        else:
            assert native == ["step1", "step2", "step3", "step4"]
        cons.append(con)

    steps = 0
    for batch in generate_change_stream(initial, **STRATEGY_STREAM):
        for row in batch.inserts:
            for con in cons:
                con.execute("INSERT INTO groups VALUES (?, ?)", list(row))
            steps += 1
        for row in batch.deletes:
            for con in cons:
                con.execute(
                    "DELETE FROM groups "
                    "WHERE group_index = ? AND group_value = ?",
                    list(row),
                )
            steps += 1
        results = [
            (
                con.execute(
                    "SELECT group_index, total_value, n, a FROM q"
                ).sorted(),
                con.execute(STRATEGY_RECOMPUTE).sorted(),
            )
            for con in cons
        ]
        for (label, _), (got, want) in zip(
            STRATEGY_ENGINE_CONFIGS[strategy], results
        ):
            assert got == want, (
                f"{strategy.value}/{label} diverged from recompute"
            )
    assert steps >= 100


def test_strategy_streams_exceed_two_hundred_steps():
    """The tentpole's acceptance bar: the newly-native strategies are
    oracle-verified across 200+ randomized DML steps (one stream per
    strategy, both over the same generator schedule)."""
    per_strategy = _strategy_stream_steps()
    assert per_strategy * len(STRATEGY_ENGINE_CONFIGS) >= 200


EXPR_VIEW = (
    "CREATE MATERIALIZED VIEW e AS "
    "SELECT UPPER(group_index) AS gg, SUM(group_value + 1) AS s, "
    "COUNT(*) AS n FROM groups GROUP BY UPPER(group_index)"
)
EXPR_RECOMPUTE = (
    "SELECT UPPER(group_index), SUM(group_value + 1), COUNT(*) "
    "FROM groups GROUP BY UPPER(group_index)"
)

# sql / step-1-on-SQL (evaluator off) / fully native with batch_eval.
EXPR_ENGINE_CONFIGS = [
    ("sql", dict(batch_kernels=False)),
    ("no_expr_eval", dict(native_expr_eval=False)),
    ("native", dict()),
]


def test_expression_keyed_three_way_oracle():
    """Computed key + computed aggregate argument through batch_eval: the
    native pipeline must agree with the evaluator-off per-step fallback,
    the pure-SQL script, and the recompute on a mixed-case stream (keys
    collide under UPPER, so the computed key genuinely regroups rows)."""
    rng = random.Random(63)

    def schema(con: Connection) -> None:
        con.execute(
            "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
        )

    cons = []
    for label, overrides in EXPR_ENGINE_CONFIGS:
        con = Connection()
        ext = load_ivm(
            con, CompilerFlags(mode=PropagationMode.LAZY, **overrides)
        )
        schema(con)
        con.execute(EXPR_VIEW)
        native = ext.status()[0]["native_steps"]
        if label == "sql":
            assert native == []
        elif label == "no_expr_eval":
            assert "step1" not in native
        else:
            assert "step1" in native
        cons.append(con)

    live: list[tuple[str, int]] = []
    for step in range(60):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            for con in cons:
                con.execute(
                    "DELETE FROM groups "
                    "WHERE group_index = ? AND group_value = ?",
                    list(victim),
                )
        else:
            # Mixed-case keys: 'a' and 'A' fold into one computed group.
            key = rng.choice("aAbBcC")
            row = (key, rng.randint(-9, 9))
            live.append(row)
            for con in cons:
                con.execute("INSERT INTO groups VALUES (?, ?)", list(row))
        if step % 3 == 0 or step == 59:
            results = [
                (
                    con.execute("SELECT gg, s, n FROM e").sorted(),
                    con.execute(EXPR_RECOMPUTE).sorted(),
                )
                for con in cons
            ]
            for (label, _), (got, want) in zip(EXPR_ENGINE_CONFIGS, results):
                assert got == want, f"{label} diverged from recompute"


WHERE_VIEW = (
    "CREATE MATERIALIZED VIEW w AS "
    "SELECT group_index, SUM(group_value) AS s, COUNT(*) AS n "
    "FROM groups WHERE group_value > 10 GROUP BY group_index"
)
WHERE_RECOMPUTE = (
    "SELECT group_index, SUM(group_value), COUNT(*) "
    "FROM groups WHERE group_value > 10 GROUP BY group_index"
)


def test_where_filtered_three_way_oracle():
    """WHERE views now run step 1 natively (bound predicate through
    batch_filter); the filter must agree with the SQL WHERE on a mixed
    stream that straddles the predicate boundary."""
    rng = random.Random(91)

    def schema(con: Connection) -> None:
        con.execute(
            "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
        )

    cons = _engines(schema, WHERE_VIEW)
    live: list[tuple[str, int]] = []
    for step in range(60):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.randrange(len(live)))
            for con in cons:
                con.execute(
                    "DELETE FROM groups "
                    "WHERE group_index = ? AND group_value = ?",
                    list(victim),
                )
        else:
            # Half the inserts land on or below the predicate boundary.
            row = (f"g{rng.randrange(4)}", rng.randint(-5, 25))
            live.append(row)
            for con in cons:
                con.execute("INSERT INTO groups VALUES (?, ?)", list(row))
        if step % 3 == 0 or step == 59:
            _check_agreement(
                cons, "w", "group_index, s, n", WHERE_RECOMPUTE
            )


# ---------------------------------------------------------------------------
# Sharded refresh oracle: hash-partitioned state vs the per-step pipeline
# ---------------------------------------------------------------------------

import sys
import threading

from repro.workloads.generators import zipf_group_keys

SHARDED_VIEW = (
    "CREATE MATERIALIZED VIEW sh AS "
    "SELECT c.region, COUNT(*) AS n, SUM(o.amount) AS revenue, "
    "MIN(o.amount) AS lo, MAX(o.amount) AS hi, AVG(o.amount) AS mean "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)
SHARDED_RECOMPUTE = (
    "SELECT c.region, COUNT(*), SUM(o.amount), MIN(o.amount), "
    "MAX(o.amount), AVG(o.amount) "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)

# Four engines: the pure-SQL script, the unsharded per-step pipeline, and
# the sharded single-step refresh at 2 shards (serial workers) and
# 4 shards (ThreadPoolExecutor workers), so both execution modes of the
# sharded path are differentially tested against the unsharded engines.
SHARDED_ENGINE_CONFIGS = [
    ("sql", dict(batch_kernels=False)),
    ("native", dict()),
    ("sharded2", dict(shard_count=2, parallel_refresh=False)),
    ("sharded4", dict(shard_count=4, parallel_refresh=True)),
]

# The milestone's acceptance bar for the sharded oracle alone.
SHARDED_STEPS = 220


def test_sharded_refresh_four_way_oracle():
    """Join-aggregation view with every fold kind (COUNT/SUM/MIN/MAX/AVG)
    under a Zipf-skewed DML stream — most activity lands on a few hot
    customers, so shard routing, per-shard extrema repair, and liveness
    deletes all run against unbalanced shards.  All four engines must
    agree with each other and with the recompute throughout."""
    workload = generate_sales_workload(
        num_customers=40, num_orders=150, num_regions=6, seed=41
    )

    def schema(con: Connection) -> None:
        con.execute(workload.SCHEMA)
        customers = con.table("customers")
        for row in workload.customers:
            customers.insert(row, coerce=False)
        orders = con.table("orders")
        for row in workload.orders:
            orders.insert(row, coerce=False)

    cons = []
    for label, overrides in SHARDED_ENGINE_CONFIGS:
        con = Connection()
        ext = load_ivm(
            con, CompilerFlags(mode=PropagationMode.LAZY, **overrides)
        )
        schema(con)
        con.execute(SHARDED_VIEW)
        native = ext.status()[0]["native_steps"]
        if label == "sql":
            assert native == []
        elif label == "native":
            assert "step1" in native and "sharded" not in native
        else:
            # The whole pipeline collapsed into the one sharded step.
            assert native == ["sharded"]
        cons.append(con)

    # Zipf-skewed customer picks: ~90% of the stream hits a handful of
    # hot customers (hash-routed to a minority of the shards).
    hot_picks = [
        int(key[1:]) for key in zipf_group_keys(
            SHARDED_STEPS * 2, num_groups=40, skew=1.3, seed=43
        )
    ]
    rng = random.Random(47)
    live: dict[int, None] = {row[0]: None for row in workload.orders}
    next_oid = workload.next_order_id()
    pick = iter(hot_picks)
    steps = 0
    for _ in range(SHARDED_STEPS):
        roll = rng.random()
        if roll < 0.55 or not live:
            cust = workload.customers[next(pick)][0]
            amount = rng.randint(-200, 500)
            for con in cons:
                con.execute(
                    "INSERT INTO orders VALUES (?, ?, ?, ?)",
                    [next_oid, cust, "p", amount],
                )
            live[next_oid] = None
            next_oid += 1
        elif roll < 0.85:
            victim = rng.choice(sorted(live))
            del live[victim]
            for con in cons:
                con.execute("DELETE FROM orders WHERE oid = ?", [victim])
        else:
            target = rng.choice(sorted(live))
            amount = rng.randint(-200, 500)
            for con in cons:
                con.execute(
                    "UPDATE orders SET amount = ? WHERE oid = ?",
                    [amount, target],
                )
        steps += 1
        if steps % 5 == 0 or steps == SHARDED_STEPS:
            results = [
                (
                    con.execute(
                        "SELECT region, n, revenue, lo, hi, mean FROM sh"
                    ).sorted(),
                    con.execute(SHARDED_RECOMPUTE).sorted(),
                )
                for con in cons
            ]
            recomputes = [want for _, want in results]
            assert all(w == recomputes[0] for w in recomputes)
            for (label, _), (got, want) in zip(
                SHARDED_ENGINE_CONFIGS, results
            ):
                assert got == want, f"{label} diverged from recompute"
    assert steps >= 200


# ---------------------------------------------------------------------------
# Snapshot reads: a reader racing the refresher never sees a torn epoch
# ---------------------------------------------------------------------------


def test_snapshot_reads_never_observe_torn_refresh():
    """Reader/refresher stress for the epoch-pinned view table.

    The writer thread (this test's main thread) inserts exactly one
    order per region per statement; under the EAGER policy each insert
    refreshes the view before returning, so every *committed* epoch has
    identical COUNT(*) across all regions.  A reader thread scans the
    view continuously (EAGER views are never refreshed by SELECT, so the
    reader only ever reads).  If a scan could observe a half-applied
    refresh — some regions upserted, others not — it would see unequal
    counts; with snapshot reads the pinned epoch makes that impossible.
    """
    num_regions = 8
    con = Connection()
    load_ivm(
        con,
        CompilerFlags(
            mode=PropagationMode.EAGER, shard_count=2, snapshot_reads=True
        ),
    )
    con.execute(
        "CREATE TABLE customers (cust_id VARCHAR PRIMARY KEY, region VARCHAR)"
    )
    con.execute(
        "CREATE TABLE orders (oid INTEGER PRIMARY KEY, cust_id VARCHAR, "
        "product VARCHAR, amount INTEGER)"
    )
    for g in range(num_regions):
        con.execute(f"INSERT INTO customers VALUES ('c{g}', 'r{g}')")
    con.execute(SHARDED_VIEW)
    # Seed epoch 1 so the reader always sees all regions.
    seed = ", ".join(f"({g}, 'c{g}', 'p', {g + 1})" for g in range(num_regions))
    con.execute(f"INSERT INTO orders VALUES {seed}")

    errors: list = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            rows = con.execute("SELECT region, n FROM sh").rows
            counts = {n for _, n in rows}
            if len(rows) != num_regions:
                errors.append(("missing regions", rows))
                stop.set()
                return
            if len(counts) != 1:
                errors.append(("torn epoch", sorted(rows)))
                stop.set()
                return

    thread = threading.Thread(target=reader)
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)  # force frequent interleaving
    thread.start()
    try:
        oid = num_regions
        for _ in range(120):
            if stop.is_set():
                break
            values = ", ".join(
                f"({oid + g}, 'c{g}', 'p', {g + 2})"
                for g in range(num_regions)
            )
            oid += num_regions
            con.execute(f"INSERT INTO orders VALUES {values}")
    finally:
        stop.set()
        thread.join()
        sys.setswitchinterval(old_interval)
    assert not errors, errors[0]
    # The view really advanced through the epochs while being read.
    final = con.execute("SELECT n FROM sh").rows
    assert {n for (n,) in final} == {121}
