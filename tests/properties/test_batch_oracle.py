"""Differential-testing harness: recompute vs. row-at-a-time vs. batched.

Randomized DML scripts (seeded, from :mod:`repro.workloads.generators`)
are replayed through three implementations of the same view:

(a) **full recompute** — the view query re-run against the base tables
    (the specification);
(b) **row-at-a-time incremental** — the compiled step-1 SQL path
    (``batch_kernels=False``);
(c) **batched incremental** — the vectorized Z-set kernels with
    ART-indexed join state (``batch_kernels=True``).

After *every* step all three must agree.  The scripts total well over the
200 randomized DML steps the batching milestone requires (each test
asserts its own step count).
"""

from __future__ import annotations

import random

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm
from repro.workloads import generate_change_stream, generate_groups_rows
from repro.workloads.generators import generate_sales_workload

GROUPS_VIEW = (
    "CREATE MATERIALIZED VIEW q AS "
    "SELECT group_index, SUM(group_value) AS total_value, COUNT(*) AS n "
    "FROM groups GROUP BY group_index"
)
GROUPS_RECOMPUTE = (
    "SELECT group_index, SUM(group_value), COUNT(*) "
    "FROM groups GROUP BY group_index"
)

JOIN_VIEW = (
    "CREATE MATERIALIZED VIEW rev AS "
    "SELECT c.region, SUM(o.amount) AS revenue, COUNT(*) AS n "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)
JOIN_RECOMPUTE = (
    "SELECT c.region, SUM(o.amount), COUNT(*) "
    "FROM orders o JOIN customers c ON o.cust_id = c.cust_id "
    "GROUP BY c.region"
)


def _engines(schema_fn, view_sql):
    """Two IVM engines (row-at-a-time and batched) over identical data."""
    engines = []
    for batched in (False, True):
        con = Connection()
        ext = load_ivm(
            con,
            CompilerFlags(mode=PropagationMode.LAZY, batch_kernels=batched),
        )
        schema_fn(con)
        con.execute(view_sql)
        engines.append((con, ext))
    (con_row, ext_row), (con_batch, ext_batch) = engines
    # The harness is only meaningful if the two engines actually take
    # different propagation paths.
    assert ext_row.status()[0]["batched"] is False
    assert ext_batch.status()[0]["batched"] is True
    return con_row, con_batch


def _check_agreement(con_row: Connection, con_batch: Connection,
                     view_name: str, columns: str, recompute_sql: str):
    """(a) == (b) == (c), where querying the lazy view refreshes it."""
    got_row = con_row.execute(f"SELECT {columns} FROM {view_name}").sorted()
    got_batch = con_batch.execute(f"SELECT {columns} FROM {view_name}").sorted()
    want_row = con_row.execute(recompute_sql).sorted()
    want_batch = con_batch.execute(recompute_sql).sorted()
    assert want_row == want_batch, "engines diverged on base data"
    assert got_row == want_row, "row-at-a-time path diverged from recompute"
    assert got_batch == want_batch, "batched path diverged from recompute"
    assert got_row == got_batch


def test_groups_three_way_oracle():
    """Single-table SUM/COUNT view over a mixed insert/delete stream."""
    initial = generate_groups_rows(300, num_groups=20, seed=9)

    def schema(con: Connection) -> None:
        con.execute(
            "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
        )
        table = con.table("groups")
        for row in initial:
            table.insert(row, coerce=False)

    con_row, con_batch = _engines(schema, GROUPS_VIEW)

    steps = 0
    stream = generate_change_stream(
        initial, batch_size=2, batches=70, num_groups=20, seed=13
    )
    for batch in stream:
        for row in batch.inserts:
            for con in (con_row, con_batch):
                con.execute("INSERT INTO groups VALUES (?, ?)", list(row))
            steps += 1
        for row in batch.deletes:
            for con in (con_row, con_batch):
                con.execute(
                    "DELETE FROM groups WHERE group_index = ? AND group_value = ?",
                    list(row),
                )
            steps += 1
        _check_agreement(
            con_row, con_batch, "q", "group_index, total_value, n",
            GROUPS_RECOMPUTE,
        )
    assert steps >= 140


def test_join_three_way_oracle():
    """Two-table join-aggregation view: the ART-indexed state path."""
    workload = generate_sales_workload(
        num_customers=30, num_orders=200, num_regions=5, seed=23
    )

    def schema(con: Connection) -> None:
        con.execute(workload.SCHEMA)
        customers = con.table("customers")
        for row in workload.customers:
            customers.insert(row, coerce=False)
        orders = con.table("orders")
        for row in workload.orders:
            orders.insert(row, coerce=False)

    con_row, con_batch = _engines(schema, JOIN_VIEW)

    rng = random.Random(37)
    live_orders = [row[0] for row in workload.orders]
    next_oid = workload.next_order_id()
    next_cust = len(workload.customers)
    steps = 0
    for _ in range(90):
        roll = rng.random()
        if roll < 0.5 or not live_orders:
            # Insert an order (sometimes for a brand-new customer).
            if rng.random() < 0.15:
                cust = f"cust_{next_cust:05d}"
                next_cust += 1
                region = rng.choice(workload.regions)
                for con in (con_row, con_batch):
                    con.execute(
                        "INSERT INTO customers VALUES (?, ?)", [cust, region]
                    )
                steps += 1
            else:
                cust = workload.customers[
                    rng.randrange(len(workload.customers))
                ][0]
            oid = next_oid
            next_oid += 1
            amount = rng.randint(1, 500)
            for con in (con_row, con_batch):
                con.execute(
                    "INSERT INTO orders VALUES (?, ?, ?, ?)",
                    [oid, cust, "p", amount],
                )
            live_orders.append(oid)
            steps += 1
        elif roll < 0.85:
            victim = live_orders.pop(rng.randrange(len(live_orders)))
            for con in (con_row, con_batch):
                con.execute("DELETE FROM orders WHERE oid = ?", [victim])
            steps += 1
        else:
            # Update an order's amount (captured as delete+insert).
            target = live_orders[rng.randrange(len(live_orders))]
            amount = rng.randint(1, 500)
            for con in (con_row, con_batch):
                con.execute(
                    "UPDATE orders SET amount = ? WHERE oid = ?",
                    [amount, target],
                )
            steps += 1
        if steps % 3 == 0:
            _check_agreement(
                con_row, con_batch, "rev", "region, revenue, n",
                JOIN_RECOMPUTE,
            )
    _check_agreement(
        con_row, con_batch, "rev", "region, revenue, n", JOIN_RECOMPUTE
    )
    assert steps >= 60


def test_float_sums_agree_given_precise_liveness():
    """Floating-point SUM views: the batch path consolidates before
    summing while SQL sums each sign partition separately, so float
    rounding may differ — but with a COUNT(*) liveness column (the
    precise step-3 form) group membership, counts, and recompute-level
    values all agree.  This pins the documented equivalence boundary
    (docs/batching.md)."""
    rng = random.Random(51)

    def schema(con: Connection) -> None:
        con.execute("CREATE TABLE t (k VARCHAR, w DOUBLE)")

    view = (
        "CREATE MATERIALIZED VIEW f AS "
        "SELECT k, SUM(w) AS s, COUNT(*) AS n FROM t GROUP BY k"
    )
    con_row, con_batch = _engines(schema, view)
    live: list[tuple[str, float]] = []
    for step in range(60):
        if rng.random() < 0.6 or not live:
            row = (rng.choice("ab"), rng.uniform(-1, 1))
            live.append(row)
            for con in (con_row, con_batch):
                con.execute("INSERT INTO t VALUES (?, ?)", list(row))
        else:
            row = live.pop(rng.randrange(len(live)))
            for con in (con_row, con_batch):
                con.execute(
                    "DELETE FROM t WHERE k = ? AND w = ?", list(row)
                )
        got_row = con_row.execute("SELECT k, s, n FROM f").sorted()
        got_batch = con_batch.execute("SELECT k, s, n FROM f").sorted()
        # Group membership and counts are exact; float sums agree to
        # within accumulated rounding of the two summation orders.
        assert [(k, n) for k, _, n in got_row] == [
            (k, n) for k, _, n in got_batch
        ]
        for (_, s1, _), (_, s2, _) in zip(got_row, got_batch):
            assert abs(s1 - s2) < 1e-9


def test_combined_scripts_exceed_two_hundred_steps():
    """The milestone's acceptance bar: the randomized scripts above replay
    ≥ 200 DML steps in total.  Recomputed here so the bound is explicit
    and breaks loudly if someone shrinks the workloads."""
    groups_steps = sum(
        batch.size
        for batch in generate_change_stream(
            generate_groups_rows(300, num_groups=20, seed=9),
            batch_size=2, batches=70, num_groups=20, seed=13,
        )
    )
    join_steps = 90  # lower bound: each loop iteration issues ≥ 1 DML
    assert groups_steps + join_steps >= 200
