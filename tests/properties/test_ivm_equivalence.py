"""Property-based end-to-end IVM equivalence.

Hypothesis drives random change streams through the full stack (extension,
trigger capture, compiled propagation SQL) and checks two oracles after
every refresh:

1. **Recomputation** — the materialized view equals running the view query
   against the current base tables.
2. **DBSP Z-sets** — the view contents equal the Z-set aggregate of the
   base relation, computed with the lifted operators of
   :mod:`repro.zset` (the paper's formal semantics).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompilerFlags, Connection, MaterializationStrategy, load_ivm
from repro.core.flags import PropagationMode
from repro.zset import ZSet, zset_aggregate, zset_filter, zset_project

_KEYS = "abcd"

# One operation: insert a (key, value) row, or delete all rows of one key
# with a chosen value (deletes are no-ops when nothing matches — realistic).
_op = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(_KEYS), st.integers(-5, 20)),
    st.tuples(st.just("delete"), st.sampled_from(_KEYS), st.integers(-5, 20)),
)


def _apply_ops(con: Connection, ops) -> None:
    for kind, key, value in ops:
        if kind == "insert":
            con.execute("INSERT INTO t VALUES (?, ?)", [key, value])
        else:
            con.execute("DELETE FROM t WHERE k = ? AND v = ?", [key, value])


def _base_zset(con: Connection) -> ZSet:
    return ZSet.from_rows(con.execute("SELECT k, v FROM t").rows)


def _setup(view_sql: str, **flags) -> Connection:
    con = Connection()
    load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY, **flags))
    con.execute("CREATE TABLE t (k VARCHAR, v INTEGER)")
    con.execute(view_sql)
    return con


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.lists(_op, max_size=8), max_size=5))
def test_sum_count_view_matches_both_oracles(batches):
    con = _setup(
        "CREATE MATERIALIZED VIEW q AS "
        "SELECT k, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY k"
    )
    for ops in batches:
        _apply_ops(con, ops)
        got = set(con.execute("SELECT k, s, c FROM q").rows)
        want = set(
            con.execute("SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k").rows
        )
        assert got == want
        # DBSP oracle: weighted aggregation over the base Z-set.
        oracle = zset_aggregate(
            _base_zset(con),
            lambda row: row[0],
            [("SUM", lambda row: row[1]), ("COUNT", None)],
        )
        assert got == {row for row, _ in oracle.items()}


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(st.lists(_op, max_size=8), max_size=4),
    st.sampled_from(list(MaterializationStrategy)),
)
def test_every_strategy_matches_recompute(batches, strategy):
    con = _setup(
        "CREATE MATERIALIZED VIEW q AS SELECT k, SUM(v) AS s, COUNT(*) AS c "
        "FROM t GROUP BY k",
        strategy=strategy,
    )
    for ops in batches:
        _apply_ops(con, ops)
        got = con.execute("SELECT k, s, c FROM q").sorted()
        want = con.execute(
            "SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k"
        ).sorted()
        assert got == want


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.lists(_op, max_size=8), max_size=4))
def test_filtered_projection_view_matches_zset_oracle(batches):
    con = _setup(
        "CREATE MATERIALIZED VIEW q AS SELECT k, v + 1 AS v1 FROM t WHERE v > 0"
    )
    for ops in batches:
        _apply_ops(con, ops)
        got = set(con.execute("SELECT k, v1, _duckdb_ivm_count FROM q").rows)
        oracle = zset_project(
            zset_filter(_base_zset(con), lambda row: row[1] > 0),
            lambda row: (row[0], row[1] + 1),
        )
        assert got == {row + (weight,) for row, weight in oracle.items()}


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.lists(_op, max_size=6), max_size=4))
def test_minmax_avg_view_matches_recompute(batches):
    con = _setup(
        "CREATE MATERIALIZED VIEW q AS "
        "SELECT k, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS a FROM t GROUP BY k"
    )
    for ops in batches:
        _apply_ops(con, ops)
        got = con.execute("SELECT k, lo, hi, a FROM q").sorted()
        want = con.execute(
            "SELECT k, MIN(v), MAX(v), AVG(v) FROM t GROUP BY k"
        ).sorted()
        assert got == want


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["o_ins", "o_del", "c_ins", "c_del"]),
            st.integers(0, 5),
            st.integers(1, 9),
        ),
        max_size=20,
    )
)
def test_join_view_matches_recompute(ops):
    con = Connection()
    load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
    con.execute("CREATE TABLE o (ck VARCHAR, qty INTEGER)")
    con.execute("CREATE TABLE c (ck VARCHAR, region VARCHAR)")
    con.execute(
        "CREATE MATERIALIZED VIEW q AS "
        "SELECT c.region, SUM(o.qty) AS s FROM o JOIN c ON o.ck = c.ck "
        "GROUP BY c.region"
    )
    for kind, key, value in ops:
        ck = f"c{key}"
        if kind == "o_ins":
            con.execute("INSERT INTO o VALUES (?, ?)", [ck, value])
        elif kind == "o_del":
            con.execute("DELETE FROM o WHERE ck = ? AND qty = ?", [ck, value])
        elif kind == "c_ins":
            con.execute("INSERT INTO c VALUES (?, ?)", [ck, f"r{value % 3}"])
        else:
            con.execute("DELETE FROM c WHERE ck = ?", [ck])
        got = con.execute("SELECT region, s FROM q").sorted()
        want = con.execute(
            "SELECT c.region, SUM(o.qty) FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region"
        ).sorted()
        assert got == want
