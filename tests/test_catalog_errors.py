"""Catalog registry and error-hierarchy tests."""

import pytest

from repro import Connection, ReproError
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, IndexSchema, TableSchema, ViewSchema
from repro.datatypes import INTEGER, VARCHAR
from repro.errors import (
    BinderError,
    CatalogError,
    ConstraintError,
    ExecutionError,
    IVMError,
    ParserError,
    TypeError_,
    UnsupportedError,
)
from repro.storage.table import Table


def make_table(name: str) -> Table:
    return Table(TableSchema(name, [Column("a", INTEGER)]))


class TestCatalog:
    def test_case_insensitive_lookup(self):
        catalog = Catalog()
        catalog.create_table(make_table("MyTable"))
        assert catalog.table("mytable").schema.name == "MyTable"
        assert catalog.has_table("MYTABLE")

    def test_table_and_view_share_namespace(self):
        catalog = Catalog()
        catalog.create_table(make_table("x"))
        with pytest.raises(CatalogError):
            catalog.create_view(ViewSchema("x", None, ""))

    def test_drop_missing_table(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("missing")
        catalog.drop_table("missing", if_exists=True)

    def test_index_requires_table(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.create_index(IndexSchema("idx", "missing", ["a"]))

    def test_indexes_on(self):
        catalog = Catalog()
        catalog.create_table(make_table("t"))
        catalog.create_index(IndexSchema("i1", "t", ["a"]))
        catalog.create_index(IndexSchema("i2", "t", ["a"], unique=True))
        assert [i.name for i in catalog.indexes_on("t")] == ["i1", "i2"]

    def test_drop_table_cascades_indexes(self):
        catalog = Catalog()
        catalog.create_table(make_table("t"))
        catalog.create_index(IndexSchema("i1", "t", ["a"]))
        catalog.drop_table("t")
        with pytest.raises(CatalogError):
            catalog.index("i1")

    def test_table_names_sorted(self):
        catalog = Catalog()
        for name in ("zz", "aa", "mm"):
            catalog.create_table(make_table(name))
        assert catalog.table_names() == ["aa", "mm", "zz"]

    def test_attached_aliases(self):
        catalog = Catalog()
        other = Catalog()
        catalog.attach("remote", other)
        assert catalog.attached_aliases() == ["remote"]
        assert catalog.attached("REMOTE") is other
        catalog.detach("remote")
        with pytest.raises(CatalogError):
            catalog.attached("remote")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            ParserError,
            BinderError,
            CatalogError,
            TypeError_,
            ConstraintError,
            ExecutionError,
            IVMError,
            UnsupportedError,
        ],
    )
    def test_all_errors_are_repro_errors(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_unsupported_is_ivm_error(self):
        assert issubclass(UnsupportedError, IVMError)

    def test_single_catch_all(self):
        con = Connection()
        with pytest.raises(ReproError):
            con.execute("SELECT * FROM nope")
        with pytest.raises(ReproError):
            con.execute("THIS IS NOT SQL")

    def test_parser_error_position(self):
        try:
            Connection().execute("SELECT FROM")
        except ParserError as exc:
            assert exc.line == 1
        else:
            pytest.fail("expected ParserError")
