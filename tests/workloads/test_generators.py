"""Workload generator tests: determinism, consistency, shapes."""

from repro.workloads import (
    ChangeBatch,
    generate_change_stream,
    generate_groups_rows,
    generate_sales_workload,
    zipf_group_keys,
)
from repro.workloads.runner import Stopwatch, format_table, time_call


class TestGroupsRows:
    def test_deterministic(self):
        a = generate_groups_rows(100, seed=1)
        b = generate_groups_rows(100, seed=1)
        assert a == b
        assert a != generate_groups_rows(100, seed=2)

    def test_shape(self):
        rows = generate_groups_rows(50, num_groups=5, value_range=(1, 10))
        assert len(rows) == 50
        assert all(1 <= v <= 10 for _, v in rows)
        assert len({k for k, _ in rows}) <= 5

    def test_zipf_skews_distribution(self):
        uniform = zipf_group_keys(5000, 100, skew=0.0, seed=3)
        skewed = zipf_group_keys(5000, 100, skew=1.5, seed=3)

        def top_share(keys):
            from collections import Counter

            counts = Counter(keys)
            return counts.most_common(1)[0][1] / len(keys)

        assert top_share(skewed) > top_share(uniform) * 3


class TestChangeStream:
    def test_deletes_target_live_rows(self):
        initial = generate_groups_rows(200, seed=5)
        live = list(initial)
        for batch in generate_change_stream(initial, batch_size=20, batches=10):
            for row in batch.deletes:
                live.remove(row)  # raises if the generator lied
            live.extend(batch.inserts)

    def test_batch_sizes(self):
        initial = generate_groups_rows(100, seed=5)
        batches = list(
            generate_change_stream(
                initial, batch_size=10, batches=5, delete_fraction=0.3
            )
        )
        assert len(batches) == 5
        assert all(b.size == 10 for b in batches)
        assert all(len(b.deletes) == 3 for b in batches)

    def test_insert_only_stream(self):
        batches = list(
            generate_change_stream([], batch_size=5, batches=2, delete_fraction=0.0)
        )
        assert all(not b.deletes for b in batches)

    def test_change_batch_size_property(self):
        batch = ChangeBatch(inserts=[(1,)], deletes=[(2,), (3,)])
        assert batch.size == 3


class TestSalesWorkload:
    def test_referential_integrity(self):
        w = generate_sales_workload(num_customers=20, num_orders=100)
        customer_ids = {c[0] for c in w.customers}
        assert all(o[1] in customer_ids for o in w.orders)

    def test_unique_order_ids(self):
        w = generate_sales_workload(num_orders=500)
        ids = [o[0] for o in w.orders]
        assert len(set(ids)) == len(ids)
        assert w.next_order_id() == max(ids) + 1

    def test_schema_executes(self):
        from repro import Connection

        w = generate_sales_workload(num_customers=5, num_orders=10)
        con = Connection()
        con.execute(w.SCHEMA)
        for c in w.customers:
            con.execute("INSERT INTO customers VALUES (?, ?)", list(c))
        for o in w.orders:
            con.execute("INSERT INTO orders VALUES (?, ?, ?, ?)", list(o))
        assert con.execute("SELECT COUNT(*) FROM orders").scalar() == 10


class TestRunner:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        assert watch.measure("work", lambda: 42) == 42
        watch.measure("work", lambda: 0)
        assert len(watch.timings["work"]) == 2
        assert watch.total("work") >= 0
        assert watch.mean("missing") == 0.0

    def test_time_call(self):
        elapsed, result = time_call(lambda: "done", repeat=2)
        assert result == "done" and elapsed >= 0

    def test_format_table_alignment(self):
        text = format_table(["name", "time"], [["fast", 0.000005], ["slow", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "5.0us" in text and "2.500s" in text
