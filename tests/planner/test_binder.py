"""Binder unit tests: plan shapes, types, and name resolution."""

import pytest

from repro import Connection
from repro.datatypes.types import TypeId
from repro.errors import BinderError
from repro.planner.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalProject,
)
from repro.sql.parser import parse_one


@pytest.fixture
def binder_con(con: Connection) -> Connection:
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER, f DOUBLE)")
    con.execute("CREATE TABLE u (g VARCHAR, w INTEGER)")
    return con


def bind(con: Connection, sql: str):
    return con.binder.bind_select(parse_one(sql))


class TestPlanShapes:
    def test_projection_shape(self, binder_con):
        plan = bind(binder_con, "SELECT g, v FROM t")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.child, LogicalGet)

    def test_filter_below_project(self, binder_con):
        plan = bind(binder_con, "SELECT g FROM t WHERE v > 0")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.child, LogicalFilter)

    def test_aggregate_shape(self, binder_con):
        plan = bind(binder_con, "SELECT g, SUM(v) FROM t GROUP BY g")
        assert isinstance(plan, LogicalProject)
        agg = plan.child
        assert isinstance(agg, LogicalAggregate)
        assert len(agg.groups) == 1
        assert agg.aggregates[0].function == "SUM"

    def test_join_shape(self, binder_con):
        plan = bind(binder_con, "SELECT t.g FROM t JOIN u ON t.g = u.g")
        assert isinstance(plan.child, LogicalJoin)

    def test_output_column_names(self, binder_con):
        plan = bind(binder_con, "SELECT g AS key, SUM(v) AS total FROM t GROUP BY g")
        assert [c.name for c in plan.output_columns] == ["key", "total"]

    def test_default_aggregate_name(self, binder_con):
        plan = bind(binder_con, "SELECT g, SUM(v) FROM t GROUP BY g")
        assert plan.output_columns[1].name == "sum"


class TestTypeInference:
    def types(self, con, sql):
        return [c.type.id for c in bind(con, sql).output_columns]

    def test_column_types(self, binder_con):
        assert self.types(binder_con, "SELECT g, v, f FROM t") == [
            TypeId.VARCHAR,
            TypeId.INTEGER,
            TypeId.DOUBLE,
        ]

    def test_sum_integer_widens_to_bigint(self, binder_con):
        assert self.types(binder_con, "SELECT SUM(v) FROM t") == [TypeId.BIGINT]

    def test_sum_double_stays_double(self, binder_con):
        assert self.types(binder_con, "SELECT SUM(f) FROM t") == [TypeId.DOUBLE]

    def test_count_is_bigint(self, binder_con):
        assert self.types(binder_con, "SELECT COUNT(*) FROM t") == [TypeId.BIGINT]

    def test_avg_is_double(self, binder_con):
        assert self.types(binder_con, "SELECT AVG(v) FROM t") == [TypeId.DOUBLE]

    def test_min_preserves_type(self, binder_con):
        assert self.types(binder_con, "SELECT MIN(g), MIN(v) FROM t") == [
            TypeId.VARCHAR,
            TypeId.INTEGER,
        ]

    def test_mixed_arithmetic_promotes(self, binder_con):
        assert self.types(binder_con, "SELECT v + f FROM t") == [TypeId.DOUBLE]

    def test_division_is_double(self, binder_con):
        assert self.types(binder_con, "SELECT v / 2 FROM t") == [TypeId.DOUBLE]

    def test_comparison_is_boolean(self, binder_con):
        assert self.types(binder_con, "SELECT v > 1 FROM t") == [TypeId.BOOLEAN]

    def test_case_unifies_branches(self, binder_con):
        assert self.types(
            binder_con, "SELECT CASE WHEN v > 0 THEN v ELSE f END FROM t"
        ) == [TypeId.DOUBLE]

    def test_concat_is_varchar(self, binder_con):
        assert self.types(binder_con, "SELECT g || 'x' FROM t") == [TypeId.VARCHAR]


class TestResolution:
    def test_alias_resolution(self, binder_con):
        plan = bind(binder_con, "SELECT x.v FROM t AS x")
        assert plan.output_columns[0].name == "v"

    def test_original_name_hidden_behind_alias(self, binder_con):
        with pytest.raises(BinderError):
            bind(binder_con, "SELECT t.v FROM t AS x")

    def test_ambiguity_across_join(self, binder_con):
        with pytest.raises(BinderError):
            bind(binder_con, "SELECT g FROM t JOIN u ON t.g = u.g")

    def test_qualified_disambiguates(self, binder_con):
        plan = bind(binder_con, "SELECT t.g, u.g FROM t JOIN u ON t.g = u.g")
        assert len(plan.output_columns) == 2

    def test_unique_unqualified_across_join_ok(self, binder_con):
        plan = bind(binder_con, "SELECT v, w FROM t JOIN u ON t.g = u.g")
        assert [c.name for c in plan.output_columns] == ["v", "w"]

    def test_star_expansion_order(self, binder_con):
        plan = bind(binder_con, "SELECT * FROM t JOIN u ON t.g = u.g")
        assert [c.name for c in plan.output_columns] == ["g", "v", "f", "g", "w"]

    def test_qualified_star(self, binder_con):
        plan = bind(binder_con, "SELECT u.* FROM t JOIN u ON t.g = u.g")
        assert [c.name for c in plan.output_columns] == ["g", "w"]

    def test_subquery_alias_scope(self, binder_con):
        plan = bind(binder_con, "SELECT s.total FROM (SELECT SUM(v) AS total FROM t) s")
        assert plan.output_columns[0].name == "total"

    def test_group_by_unknown_ordinal(self, binder_con):
        with pytest.raises(BinderError):
            bind(binder_con, "SELECT g FROM t GROUP BY 5")

    def test_limit_must_be_literal(self, binder_con):
        with pytest.raises(BinderError):
            bind(binder_con, "SELECT g FROM t LIMIT v")
