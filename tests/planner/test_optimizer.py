"""Optimizer rule tests: folding, filter pushdown, extension hook."""

import pytest

from repro import Connection
from repro.planner.expressions import BoundConstant
from repro.planner.logical import (
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalProject,
    walk_plan,
)


@pytest.fixture
def opt_con(con: Connection) -> Connection:
    con.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    con.execute("CREATE TABLE u (a INTEGER, c INTEGER)")
    return con


class TestConstantFolding:
    def test_arithmetic_folds(self, opt_con):
        plan = opt_con.query_plan("SELECT 1 + 2 * 3 FROM t")
        expr = plan.expressions[0]
        assert isinstance(expr, BoundConstant) and expr.value == 7

    def test_function_folds(self, opt_con):
        plan = opt_con.query_plan("SELECT UPPER('ab') || '!' FROM t")
        assert plan.expressions[0].value == "AB!"

    def test_case_folds(self, opt_con):
        plan = opt_con.query_plan("SELECT CASE WHEN TRUE THEN 1 ELSE 2 END FROM t")
        assert plan.expressions[0].value == 1

    def test_column_not_folded(self, opt_con):
        plan = opt_con.query_plan("SELECT a + 1 FROM t")
        assert not isinstance(plan.expressions[0], BoundConstant)

    def test_where_true_removed(self, opt_con):
        plan = opt_con.query_plan("SELECT a FROM t WHERE 1 = 1")
        assert not any(isinstance(op, LogicalFilter) for op in walk_plan(plan))

    def test_and_true_simplified(self, opt_con):
        plan = opt_con.query_plan("SELECT a FROM t WHERE a > 0 AND TRUE")
        filters = [op for op in walk_plan(plan) if isinstance(op, LogicalFilter)]
        assert len(filters) == 1
        # The TRUE conjunct must be gone, leaving only a > 0.
        from repro.planner.expressions import BoundBinary

        assert isinstance(filters[0].predicate, BoundBinary)
        assert filters[0].predicate.op == ">"

    def test_division_by_zero_not_folded_to_crash(self, opt_con):
        # Folding must not raise at plan time; the error surfaces at run time.
        plan = opt_con.query_plan("SELECT 1 / 0 FROM t")
        assert plan is not None


class TestFilterPushdown:
    def find(self, plan, kind):
        return [op for op in walk_plan(plan) if isinstance(op, kind)]

    def test_single_side_predicates_pushed(self, opt_con):
        plan = opt_con.query_plan(
            "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 1 AND u.c < 5"
        )
        join = self.find(plan, LogicalJoin)[0]
        assert isinstance(join.left, LogicalFilter)
        assert isinstance(join.right, LogicalFilter)

    def test_cross_side_predicate_stays(self, opt_con):
        plan = opt_con.query_plan("SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > u.c")
        join = self.find(plan, LogicalJoin)[0]
        assert isinstance(join.left, LogicalGet)
        assert isinstance(join.right, LogicalGet)
        # The filter remains above the join.
        assert any(isinstance(op, LogicalFilter) for op in walk_plan(plan))

    def test_no_pushdown_through_left_join(self, opt_con):
        plan = opt_con.query_plan(
            "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE u.c IS NULL"
        )
        join = self.find(plan, LogicalJoin)[0]
        assert isinstance(join.right, LogicalGet)  # not pushed

    def test_pushdown_keeps_results_correct(self, opt_con):
        opt_con.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        opt_con.execute("INSERT INTO u VALUES (1, 100), (2, 5)")
        rows = opt_con.execute(
            "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 1 AND u.c < 50"
        ).rows
        assert rows == [(2,)]


class TestExtensionRules:
    def test_registered_rule_runs_last(self, opt_con):
        seen = []

        def spy(plan):
            seen.append(type(plan).__name__)
            return plan

        opt_con.optimizer.register_rule(spy)
        opt_con.execute("SELECT a FROM t")
        assert seen == ["LogicalProject"]

    def test_rule_can_rewrite_plan(self, opt_con):
        opt_con.execute("INSERT INTO t VALUES (1, 2)")

        def limit_zero(plan):
            from repro.planner.logical import LogicalLimit

            return LogicalLimit(child=plan, limit=0)

        opt_con.optimizer.register_rule(limit_zero)
        assert opt_con.execute("SELECT a FROM t").rows == []
