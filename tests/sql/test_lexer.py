"""Lexer unit tests."""

import pytest

from repro.errors import ParserError
from repro.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])
        assert [t.upper for t in tokens[:-1]] == ["SELECT"] * 3

    def test_identifiers(self):
        tokens = tokenize("foo _bar baz_2")
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_punctuation(self):
        assert kinds("( ) , . ;") == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.SEMICOLON,
            TokenType.EOF,
        ]

    def test_parameter(self):
        assert kinds("?")[0] is TokenType.PARAMETER

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("select 1")[-1].type is TokenType.EOF


class TestNumbers:
    def test_integer(self):
        assert texts("42") == ["42"]

    def test_decimal(self):
        assert texts("3.25") == ["3.25"]

    def test_leading_dot(self):
        assert texts(".5") == [".5"]

    def test_scientific(self):
        assert texts("1e5 2.5E-3 7e+2") == ["1e5", "2.5E-3", "7e+2"]

    def test_trailing_dot_is_number_then_member(self):
        # "1.x" lexes as number 1. ... we expect "1" "." "x" (member access
        # is never valid on numbers, but tokenization must not crash).
        tokens = tokenize("t1.col")
        assert tokens[0].text == "t1"
        assert tokens[1].type is TokenType.DOT
        assert tokens[2].text == "col"


class TestStrings:
    def test_simple(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.text == "hello"

    def test_quote_escape(self):
        assert tokenize("'o''brien'")[0].text == "o'brien"

    def test_empty(self):
        assert tokenize("''")[0].text == ""

    def test_unterminated_raises(self):
        with pytest.raises(ParserError):
            tokenize("'oops")

    def test_multiline_string_tracks_lines(self):
        tokens = tokenize("'a\nb' x")
        assert tokens[0].text == "a\nb"
        assert tokens[1].line == 2


class TestQuotedIdentifiers:
    def test_quoted(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.IDENT
        assert token.text == "Weird Name"

    def test_doubled_quote_escape(self):
        assert tokenize('"a""b"')[0].text == 'a"b'

    def test_unterminated_raises(self):
        with pytest.raises(ParserError):
            tokenize('"oops')


class TestOperators:
    def test_two_char_first(self):
        assert texts("<> != <= >= || ::") == ["<>", "!=", "<=", ">=", "||", "::"]

    def test_single_char(self):
        assert texts("+ - * / % < > =") == list("+-*/%<>=")


class TestComments:
    def test_line_comment(self):
        assert texts("1 -- comment\n2") == ["1", "2"]

    def test_line_comment_at_eof(self):
        assert texts("1 -- trailing") == ["1"]

    def test_block_comment(self):
        assert texts("1 /* multi\nline */ 2") == ["1", "2"]

    def test_unterminated_block_raises(self):
        with pytest.raises(ParserError):
            tokenize("1 /* oops")


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("select\n1")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_error_carries_position(self):
        with pytest.raises(ParserError) as info:
            tokenize("select @")
        assert info.value.position == 7
