"""Round-trip tests for the SQL renderer (the DuckAST emission backend)."""

import pytest

from repro.sql.dialect import DUCKDB, POSTGRES, dialect_by_name
from repro.sql.parser import parse_one
from repro.sql.render import render_expression, render_select
from repro.errors import UnsupportedError


def roundtrip(sql: str) -> str:
    """Parse, render, re-parse, re-render — must be a fixed point."""
    first = render_select(parse_one(sql))
    second = render_select(parse_one(first))
    assert first == second
    return first


class TestExpressionRendering:
    def render(self, expr_sql: str) -> str:
        stmt = parse_one(f"SELECT {expr_sql}")
        return render_expression(stmt.items[0].expr)

    def test_precedence_parens_preserved(self):
        assert self.render("(1 + 2) * 3") == "(1 + 2) * 3"

    def test_no_spurious_parens(self):
        assert self.render("1 + 2 * 3") == "1 + 2 * 3"

    def test_or_inside_and_parenthesized(self):
        assert self.render("a AND (b OR c)") == "a AND (b OR c)"

    def test_case(self):
        out = self.render("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert out == "CASE WHEN a = 1 THEN 'x' ELSE 'y' END"

    def test_cast(self):
        assert self.render("CAST(a AS INTEGER)") == "CAST(a AS INTEGER)"

    def test_postfix_cast_normalized_to_cast(self):
        assert self.render("a::BIGINT") == "CAST(a AS BIGINT)"

    def test_string_literal_escaped(self):
        assert self.render("'o''brien'") == "'o''brien'"

    def test_in_between_like(self):
        assert self.render("a IN (1, 2)") == "a IN (1, 2)"
        assert self.render("a NOT BETWEEN 1 AND 2") == "a NOT BETWEEN 1 AND 2"
        assert self.render("a LIKE 'x%'") == "a LIKE 'x%'"

    def test_is_null(self):
        assert self.render("a IS NOT NULL") == "a IS NOT NULL"

    def test_function_uppercased(self):
        assert self.render("coalesce(a, 0)") == "COALESCE(a, 0)"

    def test_count_star(self):
        assert self.render("count(*)") == "COUNT(*)"


class TestSelectRendering:
    def test_full_query_roundtrip(self):
        out = roundtrip(
            "SELECT g, SUM(v) AS s FROM t WHERE v > 0 GROUP BY g "
            "HAVING SUM(v) > 2 ORDER BY g DESC LIMIT 3 OFFSET 1"
        )
        assert "GROUP BY g" in out
        assert "HAVING" in out
        assert "LIMIT 3" in out

    def test_joins_roundtrip(self):
        out = roundtrip(
            "SELECT a.x FROM a LEFT JOIN b ON a.k = b.k "
            "FULL OUTER JOIN c ON b.j = c.j"
        )
        assert "LEFT JOIN" in out and "FULL OUTER JOIN" in out

    def test_using_roundtrip(self):
        assert "USING (k)" in roundtrip("SELECT 1 FROM a JOIN b USING (k)")

    def test_cte_roundtrip(self):
        out = roundtrip("WITH c AS (SELECT 1 AS x) SELECT x FROM c")
        assert out.startswith("WITH c AS")

    def test_set_ops_roundtrip(self):
        out = roundtrip("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
        assert "UNION ALL" in out and " UNION SELECT 3" in out

    def test_subquery_in_from(self):
        out = roundtrip("SELECT s.x FROM (SELECT 1 AS x) AS s")
        assert "(SELECT 1 AS x) AS s" in out

    def test_distinct(self):
        assert roundtrip("SELECT DISTINCT a FROM t").startswith("SELECT DISTINCT")


class TestDialects:
    def test_lookup(self):
        assert dialect_by_name("duckdb") is DUCKDB
        assert dialect_by_name("POSTGRES") is POSTGRES

    def test_unknown_dialect(self):
        with pytest.raises(UnsupportedError):
            dialect_by_name("oracle")

    def test_identifier_quoting(self):
        assert DUCKDB.quote_identifier("plain") == "plain"
        assert DUCKDB.quote_identifier("has space") == '"has space"'
        assert DUCKDB.quote_identifier('has"quote') == '"has""quote"'

    def test_type_spelling(self):
        from repro.datatypes import DOUBLE, VARCHAR

        assert DUCKDB.type_name(DOUBLE) == "DOUBLE"
        assert POSTGRES.type_name(DOUBLE) == "DOUBLE PRECISION"
        assert POSTGRES.type_name(VARCHAR) == "VARCHAR"

    def test_upsert_styles_differ(self):
        assert DUCKDB.upsert_style == "or_replace"
        assert POSTGRES.upsert_style == "on_conflict"

    def test_truncate_styles_differ(self):
        assert DUCKDB.truncate_style == "delete"
        assert POSTGRES.truncate_style == "truncate"
