"""Parser unit tests covering the full supported statement surface."""

import pytest

from repro.errors import ParserError
from repro.sql import ast
from repro.sql.parser import parse_one, parse_script


class TestSelectBasics:
    def test_simple(self):
        stmt = parse_one("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert isinstance(stmt.from_clause, ast.BaseTableRef)

    def test_star(self):
        stmt = parse_one("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_one("SELECT t.* FROM t")
        assert stmt.items[0].expr.table == "t"

    def test_alias_with_and_without_as(self):
        stmt = parse_one("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct

    def test_where_group_having(self):
        stmt = parse_one(
            "SELECT g, SUM(v) FROM t WHERE v > 0 GROUP BY g HAVING SUM(v) > 10"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_limit_offset(self):
        stmt = parse_one("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert [o.ascending for o in stmt.order_by] == [False, True]
        assert isinstance(stmt.limit, ast.Literal) and stmt.limit.value == 5
        assert stmt.offset.value == 2

    def test_select_without_from(self):
        stmt = parse_one("SELECT 1 + 2")
        assert stmt.from_clause is None


class TestExpressions:
    def assert_expr(self, sql, node_type):
        stmt = parse_one(f"SELECT {sql}")
        assert isinstance(stmt.items[0].expr, node_type)

    def test_literals(self):
        stmt = parse_one("SELECT 1, 2.5, 'x', TRUE, FALSE, NULL")
        values = [item.expr.value for item in stmt.items]
        assert values == [1, 2.5, "x", True, False, None]

    def test_precedence_multiplication_binds_tighter(self):
        expr = parse_one("SELECT 1 + 2 * 3").items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized(self):
        expr = parse_one("SELECT (1 + 2) * 3").items[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_logical_precedence(self):
        expr = parse_one("SELECT a OR b AND c").items[0].expr
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        self.assert_expr("NOT a", ast.UnaryOp)

    def test_unary_minus(self):
        expr = parse_one("SELECT -x").items[0].expr
        assert expr.op == "-"

    def test_comparison_normalizes_bang_equals(self):
        expr = parse_one("SELECT a != b").items[0].expr
        assert expr.op == "<>"

    def test_is_null_and_is_not_null(self):
        expr = parse_one("SELECT a IS NULL, b IS NOT NULL")
        assert not expr.items[0].expr.negated
        assert expr.items[1].expr.negated

    def test_in_list(self):
        expr = parse_one("SELECT a IN (1, 2, 3)").items[0].expr
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert parse_one("SELECT a NOT IN (1)").items[0].expr.negated

    def test_between(self):
        expr = parse_one("SELECT a BETWEEN 1 AND 5").items[0].expr
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert parse_one("SELECT a NOT BETWEEN 1 AND 5").items[0].expr.negated

    def test_like(self):
        self.assert_expr("a LIKE 'x%'", ast.Like)

    def test_case_searched(self):
        expr = parse_one(
            "SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END"
        ).items[0].expr
        assert expr.operand is None
        assert len(expr.branches) == 2
        assert expr.else_result is not None

    def test_case_simple(self):
        expr = parse_one("SELECT CASE a WHEN 1 THEN 'one' END").items[0].expr
        assert expr.operand is not None

    def test_case_requires_when(self):
        with pytest.raises(ParserError):
            parse_one("SELECT CASE ELSE 1 END")

    def test_cast_function_form(self):
        expr = parse_one("SELECT CAST(a AS INTEGER)").items[0].expr
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "INTEGER"

    def test_cast_postfix_form(self):
        expr = parse_one("SELECT a::VARCHAR(10)").items[0].expr
        assert isinstance(expr, ast.Cast)
        assert expr.width == 10

    def test_function_call(self):
        expr = parse_one("SELECT COALESCE(a, 0)").items[0].expr
        assert expr.upper_name == "COALESCE"
        assert len(expr.args) == 2

    def test_count_star(self):
        expr = parse_one("SELECT COUNT(*)").items[0].expr
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        assert parse_one("SELECT COUNT(DISTINCT a)").items[0].expr.distinct

    def test_concat_operator(self):
        assert parse_one("SELECT a || b").items[0].expr.op == "||"

    def test_scalar_subquery(self):
        expr = parse_one("SELECT (SELECT MAX(x) FROM t)").items[0].expr
        assert isinstance(expr, ast.ScalarSubquery)

    def test_exists(self):
        expr = parse_one("SELECT EXISTS (SELECT 1)").items[0].expr
        assert isinstance(expr, ast.Exists)

    def test_in_subquery(self):
        expr = parse_one("SELECT a IN (SELECT b FROM t)").items[0].expr
        assert isinstance(expr.items[0], ast.ScalarSubquery)

    def test_parameter(self):
        stmt = parse_one("SELECT ?, ?")
        assert [i.expr.index for i in stmt.items] == [0, 1]


class TestJoins:
    def test_inner_join(self):
        stmt = parse_one("SELECT 1 FROM a JOIN b ON a.k = b.k")
        assert stmt.from_clause.join_type == "INNER"

    def test_left_right_full(self):
        for keyword, expected in [
            ("LEFT JOIN", "LEFT"),
            ("LEFT OUTER JOIN", "LEFT"),
            ("RIGHT JOIN", "RIGHT"),
            ("FULL OUTER JOIN", "FULL"),
        ]:
            stmt = parse_one(f"SELECT 1 FROM a {keyword} b ON a.k = b.k")
            assert stmt.from_clause.join_type == expected

    def test_cross_join(self):
        stmt = parse_one("SELECT 1 FROM a CROSS JOIN b")
        assert stmt.from_clause.join_type == "CROSS"
        assert stmt.from_clause.condition is None

    def test_comma_join_is_cross(self):
        stmt = parse_one("SELECT 1 FROM a, b")
        assert stmt.from_clause.join_type == "CROSS"

    def test_using(self):
        stmt = parse_one("SELECT 1 FROM a JOIN b USING (k, j)")
        assert stmt.from_clause.using == ["k", "j"]

    def test_chained_joins(self):
        stmt = parse_one(
            "SELECT 1 FROM a JOIN b ON a.k = b.k LEFT JOIN c ON b.j = c.j"
        )
        outer = stmt.from_clause
        assert outer.join_type == "LEFT"
        assert outer.left.join_type == "INNER"

    def test_derived_table(self):
        stmt = parse_one("SELECT 1 FROM (SELECT a FROM t) AS sub")
        assert isinstance(stmt.from_clause, ast.SubqueryRef)
        assert stmt.from_clause.alias == "sub"

    def test_table_alias(self):
        stmt = parse_one("SELECT 1 FROM orders o")
        assert stmt.from_clause.alias == "o"

    def test_schema_qualified(self):
        stmt = parse_one("SELECT 1 FROM oltp.orders")
        assert stmt.from_clause.schema == "oltp"


class TestCtesAndSetOps:
    def test_single_cte(self):
        stmt = parse_one("WITH c AS (SELECT 1) SELECT * FROM c")
        assert len(stmt.ctes) == 1
        assert stmt.ctes[0].name == "c"

    def test_multiple_ctes(self):
        stmt = parse_one("WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM a")
        assert [c.name for c in stmt.ctes] == ["a", "b"]

    def test_cte_column_list(self):
        stmt = parse_one("WITH c (x, y) AS (SELECT 1, 2) SELECT * FROM c")
        assert stmt.ctes[0].columns == ["x", "y"]

    def test_union_all(self):
        stmt = parse_one("SELECT 1 UNION ALL SELECT 2")
        assert stmt.set_ops == [("UNION ALL", stmt.set_ops[0][1])]

    def test_union_except_intersect(self):
        stmt = parse_one("SELECT 1 UNION SELECT 2 EXCEPT SELECT 3 INTERSECT SELECT 4")
        assert [op for op, _ in stmt.set_ops] == ["UNION", "EXCEPT", "INTERSECT"]


class TestDDL:
    def test_create_table(self):
        stmt = parse_one(
            "CREATE TABLE t (a VARCHAR NOT NULL, b INTEGER DEFAULT 0, "
            "c DECIMAL(10, 2), PRIMARY KEY (a))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].not_null
        assert isinstance(stmt.columns[1].default, ast.Literal)
        assert stmt.primary_key == ["a"]

    def test_inline_primary_key(self):
        stmt = parse_one("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR)")
        assert stmt.primary_key == ["a"]
        assert stmt.columns[0].not_null

    def test_create_table_if_not_exists(self):
        assert parse_one("CREATE TABLE IF NOT EXISTS t (a INTEGER)").if_not_exists

    def test_create_table_as(self):
        stmt = parse_one("CREATE TABLE t AS SELECT 1 AS one")
        assert stmt.as_query is not None

    def test_drop_table(self):
        stmt = parse_one("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTable) and stmt.if_exists

    def test_create_index(self):
        stmt = parse_one("CREATE UNIQUE INDEX idx ON t (a, b)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.unique and stmt.columns == ["a", "b"]

    def test_create_view(self):
        stmt = parse_one("CREATE VIEW v AS SELECT 1")
        assert isinstance(stmt, ast.CreateView) and not stmt.materialized

    def test_materialized_view_rejected_by_core_parser(self):
        with pytest.raises(ParserError):
            parse_one("CREATE MATERIALIZED VIEW v AS SELECT 1")

    def test_materialized_view_with_flag(self):
        stmt = parse_one(
            "CREATE MATERIALIZED VIEW v AS SELECT 1", allow_materialized=True
        )
        assert stmt.materialized


class TestDML:
    def test_insert_values(self):
        stmt = parse_one("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.values) == 2

    def test_insert_column_list(self):
        stmt = parse_one("INSERT INTO t (b, a) VALUES (1, 2)")
        assert stmt.columns == ["b", "a"]

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO t SELECT * FROM s")
        assert stmt.query is not None

    def test_insert_or_replace(self):
        assert parse_one("INSERT OR REPLACE INTO t VALUES (1)").or_replace

    def test_delete(self):
        stmt = parse_one("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete) and stmt.where is not None

    def test_delete_all(self):
        assert parse_one("DELETE FROM t").where is None

    def test_truncate_maps_to_delete(self):
        stmt = parse_one("TRUNCATE t")
        assert isinstance(stmt, ast.Delete) and stmt.where is None

    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
        assert isinstance(stmt, ast.Update)
        assert [s.column for s in stmt.assignments] == ["a", "b"]


class TestMiscStatements:
    def test_pragma(self):
        stmt = parse_one("PRAGMA ivm_chunked_index_build = TRUE")
        assert isinstance(stmt, ast.Pragma) and stmt.value is True

    def test_attach(self):
        stmt = parse_one("ATTACH 'postgres://db' AS oltp")
        assert isinstance(stmt, ast.Attach) and stmt.name == "oltp"

    def test_refresh(self):
        stmt = parse_one("REFRESH MATERIALIZED VIEW v")
        assert isinstance(stmt, ast.RefreshView) and stmt.name == "v"

    def test_transactions(self):
        for action in ("BEGIN", "COMMIT", "ROLLBACK"):
            assert parse_one(action).action == action


class TestScripts:
    def test_multiple_statements(self):
        stmts = parse_script("SELECT 1; SELECT 2;; SELECT 3")
        assert len(stmts) == 3

    def test_empty_script(self):
        assert parse_script("  ; ;") == []

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParserError):
            parse_script("SELECT 1 garbage extra")

    def test_parse_one_rejects_batches(self):
        with pytest.raises(ParserError):
            parse_one("SELECT 1; SELECT 2")

    def test_error_reports_line(self):
        with pytest.raises(ParserError) as info:
            parse_one("SELECT a\nFROM\n;")
        assert "line 3" in str(info.value)
