"""Tier-1 guard: no dead relative links in the repo's Markdown files.

The same checker runs as a standalone CI step
(``python tools/check_doc_links.py``); running it inside the test suite
means a doc rename fails fast locally too.
"""

from __future__ import annotations

import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.check_doc_links import find_dead_links, iter_markdown_files, relative_links


def test_no_dead_relative_links():
    dead = find_dead_links(_REPO_ROOT)
    assert not dead, "dead relative links in Markdown files: " + ", ".join(
        f"{path}: {target}" for path, target in dead
    )


def test_checker_sees_the_docs():
    """The guard is only meaningful if the scan actually covers the docs
    and they actually carry relative links."""
    files = {path.name for path in iter_markdown_files(_REPO_ROOT)}
    assert {"README.md", "ROADMAP.md", "architecture.md", "batching.md"} <= files
    readme_links = list(
        relative_links((_REPO_ROOT / "README.md").read_text(encoding="utf-8"))
    )
    assert "docs/architecture.md" in readme_links


def test_checker_flags_a_dead_link(tmp_path):
    (tmp_path / "doc.md").write_text(
        "see [gone](missing.md) and [ok](https://example.com) "
        "and [anchor](#here)",
        encoding="utf-8",
    )
    dead = find_dead_links(tmp_path)
    assert dead == [(pathlib.Path("doc.md"), "missing.md")]
