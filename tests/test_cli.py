"""CLI tests: the standalone command-line compiler."""

import pytest

from repro.cli import main


class TestCompile:
    def test_compile_to_stdout(self, capsys):
        exit_code = main(
            [
                "compile",
                "--schema",
                "CREATE TABLE t (g VARCHAR, v INTEGER)",
                "--view",
                "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM t GROUP BY g",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "INSERT INTO delta_q" in out
        assert "INSERT OR REPLACE INTO q" in out

    def test_compile_postgres_dialect(self, capsys):
        main(
            [
                "compile",
                "--schema",
                "CREATE TABLE t (g VARCHAR, v INTEGER)",
                "--view",
                "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM t GROUP BY g",
                "--dialect",
                "postgres",
            ]
        )
        out = capsys.readouterr().out
        assert "ON CONFLICT" in out
        assert "TRUNCATE" in out

    def test_compile_strategy_flag(self, capsys):
        main(
            [
                "compile",
                "--schema",
                "CREATE TABLE t (g VARCHAR, v INTEGER)",
                "--view",
                "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM t GROUP BY g",
                "--strategy",
                "union_regroup",
            ]
        )
        out = capsys.readouterr().out
        assert "UNION ALL" in out

    def test_compile_from_files(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text("CREATE TABLE t (g VARCHAR, v INTEGER)")
        view = tmp_path / "view.sql"
        view.write_text(
            "CREATE MATERIALIZED VIEW q AS SELECT g, COUNT(*) AS c "
            "FROM t GROUP BY g"
        )
        output = tmp_path / "out.sql"
        main(
            [
                "compile",
                "--schema",
                str(schema),
                "--view",
                str(view),
                "--output",
                str(output),
            ]
        )
        assert "INSERT INTO delta_q" in output.read_text()

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestDemo:
    def test_demo_reproduces_paper_example(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        # The §2 worked example: apple 5→2, banana 2→3.
        assert "apple        2" in out
        assert "banana       3" in out
        assert "INSERT OR REPLACE INTO query_groups" in out


class TestBench:
    def test_bench_runs_small(self, capsys):
        assert main(["bench", "--rows", "2000", "--groups", "20"]) == 0
        out = capsys.readouterr().out
        assert "incremental refresh" in out
        assert "full recomputation" in out


class TestRecover:
    def _build_durable(self, directory):
        from repro import CompilerFlags, Connection, load_ivm

        con = Connection()
        load_ivm(
            con,
            flags=CompilerFlags(durability=True),
            durability_dir=directory,
        )
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
            "FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3)")

    def test_recover_verify(self, tmp_path, capsys):
        self._build_durable(tmp_path)
        assert main(["recover", "--dir", str(tmp_path), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "q" in out
        assert "ok" in out
        assert "MISMATCH" not in out

    def test_recover_without_verify(self, tmp_path, capsys):
        self._build_durable(tmp_path)
        assert main(["recover", "--dir", str(tmp_path)]) == 0
        assert "recovered" in capsys.readouterr().out

    def test_recover_missing_dir_fails(self, tmp_path, capsys):
        assert main(["recover", "--dir", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestHealth:
    def _build_durable_dag(self, directory):
        from repro import CompilerFlags, Connection, load_ivm

        con = Connection()
        load_ivm(
            con,
            flags=CompilerFlags(durability=True),
            durability_dir=directory,
        )
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
            "FROM t GROUP BY g"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW q2 AS SELECT g, s FROM q WHERE s > 0"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3)")

    def test_health_reports_dag_depth_per_view(self, tmp_path, capsys):
        import json

        self._build_durable_dag(tmp_path)
        assert main(["health", "--dir", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        views = {v["view"]: v for v in report["runtime"]["views"]}
        assert views["q"]["depth"] == 0
        assert views["q2"]["depth"] == 1
        assert views["q2"]["upstreams"] == ["q"]
        assert views["q"]["dependents"] == ["q2"]
        for entry in views.values():
            assert entry["upstream_invalidations"] == 0
            assert entry["snapshot_dirty"] is False
