"""CLI tests: the standalone command-line compiler."""

import pytest

from repro.cli import main


class TestCompile:
    def test_compile_to_stdout(self, capsys):
        exit_code = main(
            [
                "compile",
                "--schema",
                "CREATE TABLE t (g VARCHAR, v INTEGER)",
                "--view",
                "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM t GROUP BY g",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "INSERT INTO delta_q" in out
        assert "INSERT OR REPLACE INTO q" in out

    def test_compile_postgres_dialect(self, capsys):
        main(
            [
                "compile",
                "--schema",
                "CREATE TABLE t (g VARCHAR, v INTEGER)",
                "--view",
                "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM t GROUP BY g",
                "--dialect",
                "postgres",
            ]
        )
        out = capsys.readouterr().out
        assert "ON CONFLICT" in out
        assert "TRUNCATE" in out

    def test_compile_strategy_flag(self, capsys):
        main(
            [
                "compile",
                "--schema",
                "CREATE TABLE t (g VARCHAR, v INTEGER)",
                "--view",
                "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s "
                "FROM t GROUP BY g",
                "--strategy",
                "union_regroup",
            ]
        )
        out = capsys.readouterr().out
        assert "UNION ALL" in out

    def test_compile_from_files(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text("CREATE TABLE t (g VARCHAR, v INTEGER)")
        view = tmp_path / "view.sql"
        view.write_text(
            "CREATE MATERIALIZED VIEW q AS SELECT g, COUNT(*) AS c "
            "FROM t GROUP BY g"
        )
        output = tmp_path / "out.sql"
        main(
            [
                "compile",
                "--schema",
                str(schema),
                "--view",
                str(view),
                "--output",
                str(output),
            ]
        )
        assert "INSERT INTO delta_q" in output.read_text()

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestDemo:
    def test_demo_reproduces_paper_example(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        # The §2 worked example: apple 5→2, banana 2→3.
        assert "apple        2" in out
        assert "banana       3" in out
        assert "INSERT OR REPLACE INTO query_groups" in out


class TestBench:
    def test_bench_runs_small(self, capsys):
        assert main(["bench", "--rows", "2000", "--groups", "20"]) == 0
        out = capsys.readouterr().out
        assert "incremental refresh" in out
        assert "full recomputation" in out
