"""Compiler-level tests: model layout, flags, dialect emission, errors."""

import pytest

from repro.core import CompilerFlags, MaterializationStrategy, OpenIVMCompiler
from repro.core.model import ColumnRole
from repro.errors import IVMError, UnsupportedError

SCHEMA = (
    "CREATE TABLE t (g VARCHAR, v INTEGER, f DOUBLE);"
    "CREATE TABLE u (g VARCHAR, w INTEGER)"
)


def compile_view(view_sql: str, **flag_overrides):
    flags = CompilerFlags(**flag_overrides)
    return OpenIVMCompiler.from_schema(SCHEMA, flags).compile(view_sql)


class TestModelLayout:
    def test_aggregation_columns(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g"
        )
        roles = [(c.name, c.role) for c in compiled.model.columns]
        assert roles == [
            ("g", ColumnRole.KEY),
            ("s", ColumnRole.SUM),
            ("c", ColumnRole.COUNT_STAR),
        ]

    def test_hidden_count_flag_adds_column(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            hidden_count=True,
        )
        hidden = [c for c in compiled.model.columns if not c.visible]
        assert [c.role for c in hidden] == [ColumnRole.HIDDEN_COUNT]
        assert compiled.model.liveness_column() is hidden[0]

    def test_count_star_used_for_liveness(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g"
        )
        liveness = compiled.model.liveness_column()
        assert liveness is not None and liveness.name == "c"
        assert all(c.visible for c in compiled.model.columns)

    def test_paper_fallback_without_count(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        assert compiled.model.liveness_column() is None
        step3 = [sql for label, sql in compiled.propagation if "step3" in label]
        assert step3 == ["DELETE FROM q WHERE s = 0"]

    def test_count_only_view_forces_hidden_count(self):
        # COUNT(v) can be 0 for a live group (all-NULL v), so COUNT(v) alone
        # is not a liveness signal; a hidden COUNT(*) must be added.
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, COUNT(v) AS c FROM t GROUP BY g"
        )
        assert compiled.model.liveness_column().role is ColumnRole.HIDDEN_COUNT

    def test_minmax_forces_hidden_count(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, MIN(v) AS lo FROM t GROUP BY g"
        )
        assert compiled.model.liveness_column().role is ColumnRole.HIDDEN_COUNT
        assert compiled.model.minmax_columns()[0].role is ColumnRole.MIN

    def test_avg_decomposes_into_hidden_sum_count(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, AVG(v) AS a FROM t GROUP BY g"
        )
        names = [c.name for c in compiled.model.columns]
        assert "a" in names
        assert "_duckdb_ivm_a_sum" in names
        assert "_duckdb_ivm_a_count" in names
        # Derived AVG is not stored in the delta view.
        delta_names = [c.name for c in compiled.model.delta_columns()]
        assert "a" not in delta_names

    def test_projection_counted_bag(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, v FROM t WHERE v > 0"
        )
        roles = [(c.role, c.visible) for c in compiled.model.columns]
        assert roles == [
            (ColumnRole.KEY, True),
            (ColumnRole.KEY, True),
            (ColumnRole.HIDDEN_COUNT, False),
        ]

    def test_delta_tables_map(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT t.g, SUM(u.w) AS s FROM t JOIN u ON t.g = u.g GROUP BY t.g"
        )
        assert compiled.delta_tables == {"t": "delta_t", "u": "delta_u"}
        assert compiled.delta_view_table == "delta_q"


class TestFlags:
    def test_strategy_recorded_in_metadata(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            strategy=MaterializationStrategy.UNION_REGROUP,
        )
        assert "'union_regroup'" in "\n".join(compiled.ddl)

    def test_union_regroup_emits_rebuild(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            strategy=MaterializationStrategy.UNION_REGROUP,
        )
        sqls = [sql for label, sql in compiled.propagation if "step2" in label]
        assert sqls[0].startswith("CREATE TABLE q__ivm_new AS ")
        assert "UNION ALL" in sqls[0]
        assert sqls[1] == "DELETE FROM q"
        assert sqls[3] == "DROP TABLE q__ivm_new"

    def test_full_outer_join_emits_rebuild(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            strategy=MaterializationStrategy.FULL_OUTER_JOIN,
        )
        step2 = [sql for label, sql in compiled.propagation if "step2" in label][0]
        assert "FULL OUTER JOIN" in step2
        assert "COALESCE(q.g, d.g)" in step2

    def test_minmax_requires_upsert_strategy(self):
        with pytest.raises(UnsupportedError):
            compile_view(
                "CREATE MATERIALIZED VIEW q AS SELECT g, MIN(v) AS m FROM t GROUP BY g",
                strategy=MaterializationStrategy.UNION_REGROUP,
            )

    def test_custom_prefixes(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            delta_prefix="d_",
            multiplicity_column="_m",
        )
        assert compiled.delta_tables == {"t": "d_t"}
        assert "_m BOOLEAN" in "\n".join(compiled.ddl)

    def test_emit_key_index_override(self):
        compiled = compile_view(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            emit_key_index=True,
        )
        assert any("CREATE UNIQUE INDEX" in sql for sql in compiled.ddl)


class TestPostgresDialect:
    def compile_pg(self, view_sql, **kw):
        return compile_view(view_sql, dialect="postgres", **kw)

    def test_on_conflict_upsert(self):
        compiled = self.compile_pg(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        step2 = [sql for label, sql in compiled.propagation if "step2" in label][0]
        assert "ON CONFLICT (g) DO UPDATE SET s = EXCLUDED.s" in step2
        assert "INSERT OR REPLACE" not in step2

    def test_truncate_for_deltas(self):
        compiled = self.compile_pg(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        step4 = [sql for label, sql in compiled.propagation if "step4" in label]
        assert step4 == ["TRUNCATE delta_t", "TRUNCATE delta_q"]

    def test_double_precision_spelling(self):
        compiled = self.compile_pg(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(f) AS s FROM t GROUP BY g"
        )
        assert "DOUBLE PRECISION" in "\n".join(compiled.ddl)

    def test_unique_index_emitted_by_default(self):
        compiled = self.compile_pg(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        assert any("CREATE UNIQUE INDEX" in sql for sql in compiled.ddl)


class TestErrors:
    def test_non_view_statement_rejected(self):
        compiler = OpenIVMCompiler.from_schema(SCHEMA)
        with pytest.raises(IVMError):
            compiler.compile("SELECT 1")

    def test_unknown_base_table(self):
        compiler = OpenIVMCompiler.from_schema(SCHEMA)
        with pytest.raises(Exception):
            compiler.compile("CREATE MATERIALIZED VIEW q AS SELECT x FROM missing")
