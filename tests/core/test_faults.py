"""Unit tests for the deterministic fault-injection layer
(``repro.core.faults``): spec validation, per-visit scheduling
(``after``/``times``/``probability``), seeded determinism, latency
sleeps, torn-write directives, and the diagnostics surface."""

from __future__ import annotations

import pytest

from repro.core.faults import KINDS, SITES, FaultPlan, FaultSpec, TornWrite
from repro.errors import FaultInjectedError, IVMError


class TestFaultSpecValidation:
    def test_known_kinds_and_sites_are_stable(self):
        assert set(KINDS) == {"error", "latency", "torn"}
        assert set(SITES) == {
            "wal.append",
            "checkpoint.write",
            "shard.compute",
            "queue.enqueue",
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="explode"),
            dict(probability=1.5),
            dict(probability=-0.1),
            dict(times=-1),
            dict(after=-2),
            dict(latency=-0.5),
        ],
    )
    def test_invalid_spec_rejected(self, kwargs):
        with pytest.raises(IVMError):
            FaultSpec(site="wal.append", **kwargs)


class TestErrorFaults:
    def test_error_fault_raises_typed_exception_with_detail(self):
        plan = FaultPlan(seed=1, specs=[FaultSpec(site="wal.append")])
        with pytest.raises(FaultInjectedError) as excinfo:
            plan.check("wal.append", table="t")
        assert excinfo.value.site == "wal.append"
        assert excinfo.value.retryable is True
        assert "table=t" in str(excinfo.value)

    def test_retryable_flag_carried(self):
        plan = FaultPlan(
            seed=1,
            specs=[FaultSpec(site="shard.compute", retryable=False)],
        )
        with pytest.raises(FaultInjectedError) as excinfo:
            plan.check("shard.compute", shard=0)
        assert excinfo.value.retryable is False

    def test_unmatched_site_is_a_no_op(self):
        plan = FaultPlan(seed=1, specs=[FaultSpec(site="wal.append")])
        assert plan.check("checkpoint.write", seq=1) is None
        assert plan.fired() == 0


class TestScheduling:
    def test_after_skips_early_visits(self):
        plan = FaultPlan(
            seed=1, specs=[FaultSpec(site="queue.enqueue", after=2)]
        )
        assert plan.check("queue.enqueue") is None
        assert plan.check("queue.enqueue") is None
        with pytest.raises(FaultInjectedError):
            plan.check("queue.enqueue")

    def test_times_caps_total_firings(self):
        plan = FaultPlan(
            seed=1, specs=[FaultSpec(site="wal.append", times=2)]
        )
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                plan.check("wal.append")
        for _ in range(10):
            assert plan.check("wal.append") is None
        assert plan.fired("wal.append") == 2
        assert plan.visits("wal.append") == 12

    def test_times_zero_never_fires(self):
        plan = FaultPlan(
            seed=1, specs=[FaultSpec(site="wal.append", times=0)]
        )
        for _ in range(5):
            assert plan.check("wal.append") is None
        assert plan.fired() == 0

    def test_first_match_wins_per_visit(self):
        plan = FaultPlan(
            seed=1,
            specs=[
                FaultSpec(site="wal.append", kind="latency", latency=0.0),
                FaultSpec(site="wal.append", kind="error"),
            ],
        )
        # The latency spec matches first on every visit, so the error
        # spec never fires — but both specs see every visit.
        for _ in range(3):
            assert plan.check("wal.append") is None
        snap = plan.snapshot()
        assert snap[0]["fired"] == 3
        assert snap[1]["fired"] == 0
        assert snap[0]["visits"] == snap[1]["visits"] == 3

    def test_probability_schedule_is_deterministic(self):
        def firing_pattern():
            plan = FaultPlan(
                seed=42,
                specs=[FaultSpec(site="queue.enqueue", probability=0.3)],
            )
            pattern = []
            for _ in range(50):
                try:
                    plan.check("queue.enqueue")
                    pattern.append(0)
                except FaultInjectedError:
                    pattern.append(1)
            return pattern

        first, second = firing_pattern(), firing_pattern()
        assert first == second
        assert 0 < sum(first) < 50  # actually probabilistic

    def test_different_seeds_give_different_schedules(self):
        patterns = []
        for seed in (1, 2):
            plan = FaultPlan(
                seed=seed,
                specs=[FaultSpec(site="queue.enqueue", probability=0.5)],
            )
            pattern = []
            for _ in range(64):
                try:
                    plan.check("queue.enqueue")
                    pattern.append(0)
                except FaultInjectedError:
                    pattern.append(1)
            patterns.append(pattern)
        assert patterns[0] != patterns[1]

    def test_other_site_visits_do_not_perturb_the_schedule(self):
        def pattern(interleave):
            plan = FaultPlan(
                seed=7,
                specs=[
                    FaultSpec(site="wal.append", probability=0.4),
                    FaultSpec(site="queue.enqueue", probability=0.4),
                ],
            )
            out = []
            for i in range(40):
                if interleave and i % 2:
                    try:
                        plan.check("queue.enqueue")
                    except FaultInjectedError:
                        pass
                try:
                    plan.check("wal.append")
                    out.append(0)
                except FaultInjectedError:
                    out.append(1)
            return out

        assert pattern(False) == pattern(True)


class TestLatencyFaults:
    def test_latency_sleeps_and_returns_none(self):
        plan = FaultPlan(
            seed=1,
            specs=[FaultSpec(site="shard.compute", kind="latency",
                             latency=0.25, times=1)],
        )
        slept = []
        plan._sleep = slept.append
        assert plan.check("shard.compute", shard=3) is None
        assert slept == [0.25]
        assert plan.check("shard.compute", shard=3) is None  # times=1
        assert slept == [0.25]


class TestTornWrites:
    def test_torn_fault_returns_directive(self):
        plan = FaultPlan(
            seed=1,
            specs=[FaultSpec(site="wal.append", kind="torn", times=1)],
        )
        torn = plan.check("wal.append", table="t")
        assert isinstance(torn, TornWrite)
        assert torn.site == "wal.append"
        assert isinstance(torn.error, FaultInjectedError)
        assert plan.check("wal.append", table="t") is None

    def test_cut_keeps_a_strict_prefix(self):
        torn = TornWrite("wal.append", fraction=0.5, retryable=True)
        payload = bytes(range(100))
        cut = torn.cut(payload)
        assert cut == payload[:50]
        # Tiny payloads still lose bytes... but never go below 1 byte.
        assert torn.cut(b"ab") == b"a"
        assert torn.cut(b"x") == b"x"[:1]


class TestDiagnostics:
    def test_fired_and_visits_filter_by_site(self):
        plan = FaultPlan(
            seed=1,
            specs=[
                FaultSpec(site="wal.append", times=1),
                FaultSpec(site="queue.enqueue", times=0),
            ],
        )
        with pytest.raises(FaultInjectedError):
            plan.check("wal.append")
        plan.check("wal.append")
        plan.check("queue.enqueue")
        assert plan.fired("wal.append") == 1
        assert plan.fired("queue.enqueue") == 0
        assert plan.fired() == 1
        assert plan.visits("wal.append") == 2
        assert plan.visits("queue.enqueue") == 1
        assert plan.visits() == 3

    def test_snapshot_lists_every_spec(self):
        plan = FaultPlan(
            seed=1,
            specs=[
                FaultSpec(site="wal.append", kind="torn", times=1),
                FaultSpec(site="shard.compute", kind="latency", latency=0.1),
            ],
        )
        snap = plan.snapshot()
        assert [entry["site"] for entry in snap] == [
            "wal.append", "shard.compute",
        ]
        assert [entry["kind"] for entry in snap] == ["torn", "latency"]

    def test_add_is_chainable(self):
        plan = FaultPlan(seed=3).add(FaultSpec(site="wal.append")).add(
            FaultSpec(site="queue.enqueue")
        )
        assert len(plan.snapshot()) == 2
