"""DBSP rewrite output structure: the step-1 SQL for every view class."""

import pytest

from repro.core import CompilerFlags, OpenIVMCompiler

SCHEMA = (
    "CREATE TABLE t (g VARCHAR, v INTEGER);"
    "CREATE TABLE u (g VARCHAR, w INTEGER)"
)


def step1(view_sql: str, **flags) -> str:
    compiler = OpenIVMCompiler.from_schema(SCHEMA, CompilerFlags(**flags))
    compiled = compiler.compile(view_sql)
    return compiled.propagation[0][1]


class TestSingleTableRewrite:
    def test_selection_applied_unchanged(self):
        sql = step1(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t WHERE v > 5 GROUP BY g"
        )
        # σ* = σ: the filter carries over to the delta scan verbatim.
        assert "WHERE v > 5" in sql
        assert "FROM delta_t" in sql

    def test_aggregation_grouped_by_multiplicity(self):
        sql = step1(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        assert sql.endswith("GROUP BY g, _duckdb_ivm_multiplicity")
        assert ", _duckdb_ivm_multiplicity FROM" in sql  # carried through

    def test_projection_counts_delta_rows(self):
        sql = step1("CREATE MATERIALIZED VIEW q AS SELECT g, v + 1 AS v1 FROM t")
        assert "COUNT(*) AS _duckdb_ivm_count" in sql
        assert "GROUP BY g, v + 1, _duckdb_ivm_multiplicity" in sql

    def test_leaf_substitution_keeps_alias(self):
        sql = step1(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT x.g, SUM(x.v) AS s FROM t AS x GROUP BY x.g"
        )
        assert "FROM delta_t AS x" in sql
        assert "x.g" in sql


class TestJoinRewrite:
    VIEW = (
        "CREATE MATERIALIZED VIEW q AS "
        "SELECT u.g, SUM(t.v) AS s FROM t JOIN u ON t.g = u.g GROUP BY u.g"
    )

    def test_three_terms(self):
        sql = step1(self.VIEW)
        assert sql.count("UNION ALL") == 2
        assert "FROM delta_t AS t JOIN u AS u" in sql
        assert "FROM t AS t JOIN delta_u AS u" in sql
        assert "FROM delta_t AS t JOIN delta_u AS u" in sql

    def test_third_term_sign_is_xor(self):
        sql = step1(self.VIEW)
        assert (
            "t._duckdb_ivm_multiplicity <> u._duckdb_ivm_multiplicity" in sql
        )

    def test_first_two_terms_keep_delta_side_multiplicity(self):
        sql = step1(self.VIEW)
        assert "t._duckdb_ivm_multiplicity AS _duckdb_ivm_multiplicity" in sql
        assert "u._duckdb_ivm_multiplicity AS _duckdb_ivm_multiplicity" in sql

    def test_outer_aggregation_over_src(self):
        sql = step1(self.VIEW)
        assert ") AS src" in sql
        assert "src.u__g" in sql
        assert "SUM(src.t__v)" in sql
        assert sql.endswith("GROUP BY src.u__g, _duckdb_ivm_multiplicity")

    def test_filter_inside_each_term(self):
        sql = step1(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT u.g, SUM(t.v) AS s FROM t JOIN u ON t.g = u.g "
            "WHERE t.v > 0 GROUP BY u.g"
        )
        assert sql.count("WHERE t.v > 0") == 3

    def test_join_condition_in_each_term(self):
        sql = step1(self.VIEW)
        assert sql.count("ON t.g = u.g") == 3


class TestRewriteExecutesOnEngine:
    def test_join_step1_runs(self, con):
        con.execute(SCHEMA)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("INSERT INTO u VALUES ('a', 2)")
        compiler = OpenIVMCompiler(con.catalog, CompilerFlags())
        compiled = compiler.compile(self_view())
        for sql in compiled.ddl:
            con.execute(sql)
        con.execute(compiled.populate)
        con.execute("INSERT INTO delta_t VALUES ('a', 10, TRUE)")
        con.execute(compiled.propagation[0][1])
        rows = con.execute("SELECT * FROM delta_q").rows
        assert rows == [("a", 10, 1, True)]


def self_view() -> str:
    return (
        "CREATE MATERIALIZED VIEW q AS "
        "SELECT u.g, SUM(t.v) AS s, COUNT(*) AS n "
        "FROM t JOIN u ON t.g = u.g GROUP BY u.g"
    )
