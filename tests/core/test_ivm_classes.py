"""End-to-end IVM correctness for every supported view class.

Each test compiles a view, runs the generated DDL + populate on the
engine, applies base changes with matching manual delta rows, runs the
propagation script, and compares the materialized contents against full
recomputation — the check the demo performs for visitors.
"""

import pytest

from repro import Connection
from repro.core import CompilerFlags, MaterializationStrategy, OpenIVMCompiler


class Harness:
    """Drives one compiled view over a live connection with manual deltas."""

    def __init__(self, con: Connection, view_sql: str, **flag_overrides):
        self.con = con
        flags = CompilerFlags(**flag_overrides)
        self.compiled = OpenIVMCompiler(con.catalog, flags).compile(view_sql)
        for sql in self.compiled.ddl:
            con.execute(sql)
        con.execute(self.compiled.populate)
        self.mult = flags.multiplicity_column

    def apply(self, table: str, inserts=(), deletes=()):
        """Apply base changes and mirror them into the delta table."""
        delta = self.con.table(self.compiled.delta_tables[table])
        base = self.con.table(table)
        for row in inserts:
            base.insert(row)
            delta.insert(tuple(row) + (True,), coerce=False)
        for row in deletes:
            victims = [
                rid for rid, r in base.scan_with_ids() if r == tuple(row)
            ]
            base.delete_row(victims[0])
            delta.insert(tuple(row) + (False,), coerce=False)

    def propagate(self):
        for _, sql in self.compiled.propagation:
            self.con.execute(sql)

    def check(self, truth_sql: str, columns: str):
        self.propagate()
        got = self.con.execute(
            f"SELECT {columns} FROM {self.compiled.name}"
        ).sorted()
        want = self.con.execute(truth_sql).sorted()
        assert got == want, f"\ngot  {got}\nwant {want}"


@pytest.fixture
def groups(con: Connection) -> Connection:
    con.execute("CREATE TABLE g (k VARCHAR, v INTEGER)")
    con.execute("INSERT INTO g VALUES ('a', 1), ('a', 2), ('b', 5), ('c', 7)")
    return con


class TestAggregationClass:
    VIEW = "CREATE MATERIALIZED VIEW q AS SELECT k, SUM(v) AS s FROM g GROUP BY k"
    TRUTH = "SELECT k, SUM(v) FROM g GROUP BY k"

    def test_inserts_only(self, groups):
        h = Harness(groups, self.VIEW)
        h.apply("g", inserts=[("a", 10), ("z", 1)])
        h.check(self.TRUTH, "k, s")

    def test_deletes_only(self, groups):
        h = Harness(groups, self.VIEW)
        h.apply("g", deletes=[("a", 1), ("b", 5)])
        h.check(self.TRUTH, "k, s")

    def test_mixed_and_group_disappearance(self, groups):
        h = Harness(groups, self.VIEW)
        h.apply("g", inserts=[("d", 4)], deletes=[("c", 7)])
        h.check(self.TRUTH, "k, s")
        assert ("c",) not in {
            (r[0],) for r in groups.execute("SELECT k FROM q").rows
        }

    def test_empty_delta_is_noop(self, groups):
        h = Harness(groups, self.VIEW)
        before = groups.execute("SELECT * FROM q").sorted()
        h.propagate()
        assert groups.execute("SELECT * FROM q").sorted() == before

    def test_repeated_propagation_rounds(self, groups):
        h = Harness(groups, self.VIEW)
        for round_ in range(5):
            h.apply("g", inserts=[(f"r{round_}", round_ + 1), ("a", 1)])
            h.check(self.TRUTH, "k, s")

    def test_multi_key_view(self, con):
        con.execute("CREATE TABLE m (a VARCHAR, b INTEGER, v INTEGER)")
        con.execute("INSERT INTO m VALUES ('x', 1, 5), ('x', 2, 6), ('y', 1, 7)")
        h = Harness(
            con,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT a, b, SUM(v) AS s, COUNT(*) AS c FROM m GROUP BY a, b",
        )
        h.apply("m", inserts=[("x", 1, 10)], deletes=[("y", 1, 7)])
        h.check("SELECT a, b, SUM(v), COUNT(*) FROM m GROUP BY a, b", "a, b, s, c")

    def test_filtered_aggregate(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT k, SUM(v) AS s FROM g WHERE v >= 2 GROUP BY k",
        )
        # A delta row below the filter threshold must be ignored.
        h.apply("g", inserts=[("a", 1), ("a", 100)])
        h.check("SELECT k, SUM(v) FROM g WHERE v >= 2 GROUP BY k", "k, s")

    def test_expression_group_key(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(k) AS kk, SUM(v) AS s FROM g GROUP BY UPPER(k)",
        )
        h.apply("g", inserts=[("a", 3)], deletes=[("b", 5)])
        h.check("SELECT UPPER(k), SUM(v) FROM g GROUP BY UPPER(k)", "kk, s")

    def test_scalar_aggregate_view(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT SUM(v) AS s, COUNT(*) AS c FROM g",
        )
        h.apply("g", inserts=[("a", 100)], deletes=[("b", 5)])
        h.check("SELECT SUM(v), COUNT(*) FROM g", "s, c")


class TestStrategies:
    VIEW = (
        "CREATE MATERIALIZED VIEW q AS "
        "SELECT k, SUM(v) AS s, COUNT(*) AS c FROM g GROUP BY k"
    )
    TRUTH = "SELECT k, SUM(v), COUNT(*) FROM g GROUP BY k"

    @pytest.mark.parametrize("strategy", list(MaterializationStrategy))
    def test_all_strategies_agree(self, groups, strategy):
        h = Harness(groups, self.VIEW, strategy=strategy)
        h.apply("g", inserts=[("a", 3), ("z", 9)], deletes=[("c", 7)])
        h.check(self.TRUTH, "k, s, c")

    @pytest.mark.parametrize("strategy", list(MaterializationStrategy))
    def test_strategies_survive_multiple_rounds(self, groups, strategy):
        h = Harness(groups, self.VIEW, strategy=strategy)
        for i in range(3):
            h.apply("g", inserts=[(f"n{i}", i + 1)], deletes=[])
            h.check(self.TRUTH, "k, s, c")


class TestProjectionClass:
    def test_counted_bag_semantics(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS SELECT k, v * 2 AS vv FROM g WHERE v > 1",
        )
        h.apply("g", inserts=[("a", 2), ("a", 2)], deletes=[("b", 5)])
        # Truth: distinct projected rows with bag counts.
        h.propagate()
        got = groups.execute("SELECT k, vv, _duckdb_ivm_count FROM q").sorted()
        want = groups.execute(
            "SELECT k, v * 2, COUNT(*) FROM g WHERE v > 1 GROUP BY k, v * 2"
        ).sorted()
        assert got == want

    def test_duplicate_rows_tracked_exactly(self, con):
        con.execute("CREATE TABLE d (x INTEGER)")
        con.execute("INSERT INTO d VALUES (1), (1), (1)")
        h = Harness(con, "CREATE MATERIALIZED VIEW q AS SELECT x FROM d")
        h.apply("d", deletes=[(1,)])
        h.propagate()
        assert con.execute("SELECT x, _duckdb_ivm_count FROM q").rows == [(1, 2)]
        h.apply("d", deletes=[(1,), (1,)])
        h.propagate()
        assert con.execute("SELECT * FROM q").rows == []


class TestJoinClasses:
    @pytest.fixture
    def two_tables(self, con):
        con.execute("CREATE TABLE o (oid INTEGER, ck VARCHAR, qty INTEGER)")
        con.execute("CREATE TABLE c (ck VARCHAR, region VARCHAR)")
        con.execute("INSERT INTO c VALUES ('c1', 'eu'), ('c2', 'us')")
        con.execute(
            "INSERT INTO o VALUES (1, 'c1', 10), (2, 'c1', 5), (3, 'c2', 7)"
        )
        return con

    def test_join_aggregation_delta_left(self, two_tables):
        h = Harness(
            two_tables,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT c.region, SUM(o.qty) AS s FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region",
        )
        h.apply("o", inserts=[(4, "c2", 100)], deletes=[(1, "c1", 10)])
        h.check(
            "SELECT c.region, SUM(o.qty) FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region",
            "region, s",
        )

    def test_join_aggregation_delta_right(self, two_tables):
        h = Harness(
            two_tables,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT c.region, COUNT(*) AS n FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region",
        )
        h.apply("c", inserts=[("c3", "apac")])
        h.apply("o", inserts=[(4, "c3", 1)])
        h.check(
            "SELECT c.region, COUNT(*) FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region",
            "region, n",
        )

    def test_join_both_sides_same_round(self, two_tables):
        h = Harness(
            two_tables,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT c.region, SUM(o.qty) AS s FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region",
        )
        # ΔA and ΔB in the same batch exercises the third join term.
        h.apply("c", inserts=[("c9", "apac")], deletes=[("c2", "us")])
        h.apply("o", inserts=[(5, "c9", 50)], deletes=[(3, "c2", 7)])
        h.check(
            "SELECT c.region, SUM(o.qty) FROM o JOIN c ON o.ck = c.ck "
            "GROUP BY c.region",
            "region, s",
        )

    def test_join_projection(self, two_tables):
        h = Harness(
            two_tables,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT o.oid, c.region FROM o JOIN c ON o.ck = c.ck",
        )
        h.apply("o", inserts=[(9, "c1", 1)], deletes=[(2, "c1", 5)])
        h.propagate()
        got = two_tables.execute("SELECT oid, region FROM q").sorted()
        want = two_tables.execute(
            "SELECT o.oid, c.region FROM o JOIN c ON o.ck = c.ck"
        ).sorted()
        assert got == want

    def test_join_with_filter(self, two_tables):
        h = Harness(
            two_tables,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT c.region, SUM(o.qty) AS s FROM o JOIN c ON o.ck = c.ck "
            "WHERE o.qty > 5 GROUP BY c.region",
        )
        h.apply("o", inserts=[(6, "c1", 3), (7, "c1", 30)])
        h.check(
            "SELECT c.region, SUM(o.qty) FROM o JOIN c ON o.ck = c.ck "
            "WHERE o.qty > 5 GROUP BY c.region",
            "region, s",
        )


class TestMinMaxAvg:
    def test_min_max_insert_only_fast_path(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT k, MIN(v) AS lo, MAX(v) AS hi FROM g GROUP BY k",
        )
        h.apply("g", inserts=[("a", 0), ("a", 100)])
        h.check("SELECT k, MIN(v), MAX(v) FROM g GROUP BY k", "k, lo, hi")

    def test_min_max_delete_triggers_rescan(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT k, MIN(v) AS lo, MAX(v) AS hi FROM g GROUP BY k",
        )
        h.apply("g", deletes=[("a", 2)])  # deletes current max of 'a'
        h.check("SELECT k, MIN(v), MAX(v) FROM g GROUP BY k", "k, lo, hi")

    def test_min_max_group_disappears(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS SELECT k, MAX(v) AS hi FROM g GROUP BY k",
        )
        h.apply("g", deletes=[("b", 5)])
        h.check("SELECT k, MAX(v) FROM g GROUP BY k", "k, hi")

    def test_avg_maintained_through_hidden_columns(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS SELECT k, AVG(v) AS a FROM g GROUP BY k",
        )
        h.apply("g", inserts=[("a", 9)], deletes=[("a", 1)])
        h.check("SELECT k, AVG(v) FROM g GROUP BY k", "k, a")

    def test_all_aggregates_together(self, groups):
        h = Harness(
            groups,
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT k, SUM(v) AS s, COUNT(*) AS c, MIN(v) AS lo, "
            "MAX(v) AS hi, AVG(v) AS a FROM g GROUP BY k",
        )
        h.apply("g", inserts=[("a", 50), ("n", 3)], deletes=[("a", 2), ("c", 7)])
        h.check(
            "SELECT k, SUM(v), COUNT(*), MIN(v), MAX(v), AVG(v) FROM g GROUP BY k",
            "k, s, c, lo, hi, a",
        )
