"""View analysis: classification and the supported-surface boundary."""

import pytest

from repro import Connection
from repro.core.analyze import ViewClass, analyze_view
from repro.errors import UnsupportedError
from repro.sql.parser import parse_one


@pytest.fixture
def catalog(con: Connection):
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER, f DOUBLE)")
    con.execute("CREATE TABLE u (g VARCHAR, w INTEGER)")
    return con.catalog


def analyze(catalog, sql: str):
    return analyze_view("v", parse_one(sql), catalog)


class TestClassification:
    def test_projection(self, catalog):
        a = analyze(catalog, "SELECT g, v + 1 AS v1 FROM t WHERE v > 0")
        assert a.view_class is ViewClass.PROJECTION
        assert [k.name for k in a.keys] == ["g", "v1"]
        assert a.aggregates == []
        assert a.where is not None

    def test_aggregation(self, catalog):
        a = analyze(catalog, "SELECT g, SUM(v) AS s, COUNT(*) AS c FROM t GROUP BY g")
        assert a.view_class is ViewClass.AGGREGATION
        assert [k.name for k in a.keys] == ["g"]
        assert [(agg.name, agg.function) for agg in a.aggregates] == [
            ("s", "SUM"),
            ("c", "COUNT"),
        ]

    def test_join(self, catalog):
        a = analyze(catalog, "SELECT t.v, u.w FROM t JOIN u ON t.g = u.g")
        assert a.view_class is ViewClass.JOIN
        assert len(a.tables) == 2
        assert a.join_condition is not None

    def test_join_aggregation(self, catalog):
        a = analyze(
            catalog,
            "SELECT u.g, SUM(t.v) AS s FROM t JOIN u ON t.g = u.g GROUP BY u.g",
        )
        assert a.view_class is ViewClass.JOIN_AGGREGATION

    def test_join_using(self, catalog):
        a = analyze(catalog, "SELECT t.v FROM t JOIN u USING (g)")
        assert a.join_condition is not None  # synthesized equality

    def test_aggregate_order_preserved(self, catalog):
        a = analyze(catalog, "SELECT SUM(v) AS s, g FROM t GROUP BY g")
        assert a.output_names() == ["g", "s"]  # keys listed first internally

    def test_count_star_vs_count_column(self, catalog):
        a = analyze(catalog, "SELECT g, COUNT(*) AS all_, COUNT(v) AS vs FROM t GROUP BY g")
        assert a.aggregates[0].argument is None
        assert a.aggregates[1].argument is not None

    def test_scalar_aggregate_without_group(self, catalog):
        a = analyze(catalog, "SELECT SUM(v) AS total FROM t")
        assert a.view_class is ViewClass.AGGREGATION
        assert a.keys == []


class TestRejections:
    def reject(self, catalog, sql, fragment):
        with pytest.raises(UnsupportedError) as info:
            analyze(catalog, sql)
        assert fragment in str(info.value).lower()

    def test_cte(self, catalog):
        self.reject(catalog, "WITH c AS (SELECT 1) SELECT * FROM c", "cte")

    def test_set_ops(self, catalog):
        self.reject(catalog, "SELECT g FROM t UNION SELECT g FROM u", "set operations")

    def test_order_limit(self, catalog):
        self.reject(catalog, "SELECT g FROM t ORDER BY g", "order by")
        self.reject(catalog, "SELECT g FROM t LIMIT 5", "order by")

    def test_distinct(self, catalog):
        self.reject(catalog, "SELECT DISTINCT g FROM t", "distinct")

    def test_having(self, catalog):
        self.reject(
            catalog, "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 1", "having"
        )

    def test_star(self, catalog):
        self.reject(catalog, "SELECT * FROM t", "columns")

    def test_outer_join(self, catalog):
        self.reject(
            catalog, "SELECT t.v FROM t LEFT JOIN u ON t.g = u.g", "inner"
        )

    def test_three_tables(self, catalog):
        self.reject(
            catalog,
            "SELECT t.v FROM t JOIN u ON t.g = u.g JOIN t AS t2 ON u.g = t2.g",
            "two base tables",
        )

    def test_subquery_source(self, catalog):
        self.reject(
            catalog, "SELECT s.v FROM (SELECT v FROM t) s", "base tables"
        )

    def test_distinct_aggregate(self, catalog):
        self.reject(
            catalog, "SELECT g, COUNT(DISTINCT v) AS c FROM t GROUP BY g", "distinct"
        )

    def test_expression_over_aggregate(self, catalog):
        self.reject(
            catalog, "SELECT g, SUM(v) + 1 AS s1 FROM t GROUP BY g", "combining"
        )

    def test_group_key_missing_from_select(self, catalog):
        self.reject(
            catalog, "SELECT SUM(v) AS s FROM t GROUP BY g", "select list"
        )

    def test_group_by_without_aggregates(self, catalog):
        self.reject(catalog, "SELECT g FROM t GROUP BY g", "distinct")

    def test_where_subquery(self, catalog):
        self.reject(
            catalog,
            "SELECT g FROM t WHERE v > (SELECT 1)",
            "subquer",
        )


class TestNameHandling:
    def test_duplicate_output_names_deduped(self, catalog):
        a = analyze(catalog, "SELECT g, g FROM t")
        names = [k.name for k in a.keys]
        assert len(set(n.lower() for n in names)) == 2

    def test_default_names(self, catalog):
        a = analyze(catalog, "SELECT g, SUM(v) FROM t GROUP BY g")
        assert a.aggregates[0].name == "sum"
