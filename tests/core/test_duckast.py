"""DuckAST helper tests: constructors, leaf substitution, re-qualification."""

import pytest

from repro.errors import IVMError
from repro.sql import ast
from repro.sql.dialect import DUCKDB, POSTGRES
from repro.sql.parser import parse_one
from repro.core import duckast as d


class TestConstructors:
    def test_signed_by_multiplicity_matches_listing(self):
        expr = d.signed_by_multiplicity(d.col("total_value"), d.col("m"))
        assert d.emit_expression(expr, DUCKDB) == (
            "CASE WHEN m = FALSE THEN -total_value ELSE total_value END"
        )

    def test_only_inserts(self):
        expr = d.only_inserts(d.col("v"), d.col("m"))
        assert d.emit_expression(expr, DUCKDB) == "CASE WHEN m = TRUE THEN v END"

    def test_conj_single_and_multiple(self):
        single = d.conj([d.eq(d.col("a"), d.lit(1))])
        assert d.emit_expression(single, DUCKDB) == "a = 1"
        multi = d.conj([d.eq(d.col("a"), d.lit(1)), d.eq(d.col("b"), d.lit(2))])
        assert d.emit_expression(multi, DUCKDB) == "a = 1 AND b = 2"

    def test_empty_conj_raises(self):
        with pytest.raises(IVMError):
            d.conj([])

    def test_agg_star(self):
        assert d.emit_expression(d.agg("COUNT", None), DUCKDB) == "COUNT(*)"

    def test_coalesce_add(self):
        expr = d.add(d.coalesce(d.col("x"), d.lit(0)), d.col("y"))
        assert d.emit_expression(expr, DUCKDB) == "COALESCE(x, 0) + y"


class TestSubstituteTable:
    def test_base_table_renamed_with_alias_preserved(self):
        ref = d.base_table("groups")
        out = d.substitute_table(ref, "groups", "delta_groups")
        assert out.name == "delta_groups"
        assert out.alias == "groups"  # original name becomes the alias

    def test_explicit_alias_kept(self):
        ref = d.base_table("groups", alias="g")
        out = d.substitute_table(ref, "groups", "delta_groups")
        assert out.name == "delta_groups" and out.alias == "g"

    def test_join_tree_substitution(self):
        select = parse_one("SELECT 1 FROM a JOIN b ON a.k = b.k")
        out = d.substitute_table(select.from_clause, "b", "delta_b")
        assert out.left.name == "a"
        assert out.right.name == "delta_b"
        assert out.right.alias == "b"

    def test_original_untouched(self):
        ref = d.base_table("groups")
        d.substitute_table(ref, "groups", "delta_groups")
        assert ref.name == "groups"


class TestSourceNamespace:
    def make(self):
        return d.SourceNamespace(
            [("orders", "o", ["oid", "cust", "qty"]),
             ("customers", "c", ["cust", "region"])]
        )

    def test_owner_by_alias(self):
        ns = self.make()
        assert ns.owner_alias("qty", "o") == "o"
        assert ns.owner_alias("region", None) == "c"

    def test_ambiguous_unqualified_raises(self):
        with pytest.raises(IVMError):
            self.make().owner_alias("cust", None)

    def test_unknown_column_raises(self):
        with pytest.raises(IVMError):
            self.make().owner_alias("missing", None)

    def test_unknown_alias_raises(self):
        with pytest.raises(IVMError):
            self.make().owner_alias("qty", "zzz")

    def test_src_name(self):
        assert self.make().src_name("qty", None) == "o__qty"

    def test_referenced_columns_deduped(self):
        ns = self.make()
        exprs = [
            parse_one("SELECT o.qty + o.qty").items[0].expr,
            parse_one("SELECT region").items[0].expr,
        ]
        assert ns.referenced_columns(exprs) == [("o", "qty"), ("c", "region")]


class TestRequalify:
    def test_rewrites_into_src_namespace(self):
        ns = d.SourceNamespace([("t", "t", ["g", "v"])])
        expr = parse_one("SELECT t.g || '-' || CAST(v AS VARCHAR)").items[0].expr
        out = d.requalify_to_src(expr, ns)
        assert d.emit_expression(out, DUCKDB) == (
            "src.t__g || '-' || CAST(src.t__v AS VARCHAR)"
        )

    def test_qualify_columns_adds_owner(self):
        ns = d.SourceNamespace([("t", "t", ["g", "v"])])
        expr = parse_one("SELECT UPPER(g)").items[0].expr
        out = d.qualify_columns(expr, ns)
        assert d.emit_expression(out, DUCKDB) == "UPPER(t.g)"

    def test_qualify_preserves_existing_qualification(self):
        ns = d.SourceNamespace([("t", "x", ["g"])])
        expr = parse_one("SELECT x.g").items[0].expr
        out = d.qualify_columns(expr, ns)
        assert d.emit_expression(out, DUCKDB) == "x.g"

    def test_case_branches_rewritten(self):
        ns = d.SourceNamespace([("t", "t", ["g", "v"])])
        expr = parse_one("SELECT CASE WHEN v > 0 THEN g ELSE 'x' END").items[0].expr
        out = d.requalify_to_src(expr, ns)
        text = d.emit_expression(out, DUCKDB)
        assert "src.t__v" in text and "src.t__g" in text


class TestEmission:
    def test_emit_dialect_quoting(self):
        select = d.select(
            items=[d.item(d.col("a column"), "out")],
            from_clause=d.base_table("my table"),
        )
        text = d.emit(select, POSTGRES)
        assert '"a column"' in text and '"my table"' in text
