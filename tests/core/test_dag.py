"""Unit tests for the view dependency DAG (cascaded IVM).

Two layers: the pure :class:`~repro.core.dag.ViewDependencyGraph`
container (topology, closures, cycle detection), and the extension-level
CREATE/DROP protocol built on it (self-reference rejection, drop
protection, depth reporting).
"""

from __future__ import annotations

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm
from repro.core.dag import ViewDependencyGraph
from repro.errors import DependencyCycleError, IVMError


class TestViewDependencyGraph:
    def test_topo_sort_orders_upstream_first(self):
        dag = ViewDependencyGraph()
        dag.add_view("v1")
        dag.add_view("v2", upstream=["v1"])
        dag.add_view("v3", upstream=["v2"])
        order = dag.topo_sort()
        assert order.index("v1") < order.index("v2") < order.index("v3")

    def test_registration_order_breaks_ties(self):
        """Same-level views keep creation order — the recovery path
        restores views in exactly this order."""
        dag = ViewDependencyGraph()
        dag.add_view("b")
        dag.add_view("a")
        assert dag.topo_sort() == ["b", "a"]

    def test_closures_exclude_self_and_follow_edges(self):
        dag = ViewDependencyGraph()
        dag.add_view("v1")
        dag.add_view("v2", upstream=["v1"])
        dag.add_view("v3", upstream=["v2"])
        dag.add_view("other")
        assert dag.upstream_closure("v3") == ["v1", "v2"]
        assert dag.dependents_closure("v1") == ["v2", "v3"]
        assert dag.upstream_closure("v1") == []
        assert dag.dependents_closure("v3") == []

    def test_diamond_depth_and_closures(self):
        dag = ViewDependencyGraph()
        dag.add_view("a")
        dag.add_view("b")
        dag.add_view("d", upstream=["a", "b"])
        assert dag.depth("a") == 0 and dag.depth("b") == 0
        assert dag.depth("d") == 1
        assert dag.upstream_closure("d") == ["a", "b"]
        assert dag.dependents("a") == {"d"}

    def test_self_reference_raises_typed_error(self):
        dag = ViewDependencyGraph()
        with pytest.raises(DependencyCycleError) as info:
            dag.add_view("v", upstream=["v"])
        assert info.value.cycle == ("v", "v")
        assert "v" not in dag

    def test_cycle_through_replacement_raises_and_leaves_graph_intact(self):
        """Re-registering v1 over v2 (which reads v1) would close a
        cycle; the graph must reject it and stay unchanged."""
        dag = ViewDependencyGraph()
        dag.add_view("v1")
        dag.add_view("v2", upstream=["v1"])
        with pytest.raises(DependencyCycleError) as info:
            dag.add_view("v1", upstream=["v2"])
        cycle = info.value.cycle
        assert cycle[0] == cycle[-1] == "v1"
        assert "v2" in cycle
        assert dag.upstream("v1") == set()
        assert dag.upstream("v2") == {"v1"}

    def test_unknown_upstream_names_are_ignored(self):
        """Base tables appear as upstream candidates during recovery;
        only registered views become edges."""
        dag = ViewDependencyGraph()
        dag.add_view("v", upstream=["base_table"])
        assert dag.upstream("v") == set()
        assert dag.depth("v") == 0

    def test_remove_view_unlinks_both_directions(self):
        dag = ViewDependencyGraph()
        dag.add_view("v1")
        dag.add_view("v2", upstream=["v1"])
        dag.remove_view("v2")
        assert dag.dependents("v1") == set()
        assert "v2" not in dag

    def test_names_are_case_insensitive(self):
        dag = ViewDependencyGraph()
        dag.add_view("V1")
        dag.add_view("v2", upstream=["v1"])
        assert dag.dependents("v1") == {"v2"}


class TestExtensionDagProtocol:
    def _engine(self):
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        return con, ext

    def test_create_rejects_self_reference(self):
        con, _ = self._engine()
        with pytest.raises(DependencyCycleError):
            con.execute(
                "CREATE MATERIALIZED VIEW loop AS "
                "SELECT g, v FROM loop WHERE v > 0"
            )
        assert not con.catalog.has_table("loop")

    def test_drop_with_dependents_is_rejected(self):
        con, ext = self._engine()
        con.execute(
            "CREATE MATERIALIZED VIEW v1 AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW v2 AS SELECT g, s FROM v1 WHERE s > 0"
        )
        with pytest.raises(IVMError):
            con.execute("DROP MATERIALIZED VIEW v1")
        # Dropping leaf-first is fine, and then the upstream goes too.
        con.execute("DROP MATERIALIZED VIEW v2")
        con.execute("DROP MATERIALIZED VIEW v1")
        assert ext.views() == []

    def test_drop_leaf_removes_feed_and_cascade_trigger(self):
        con, ext = self._engine()
        con.execute(
            "CREATE MATERIALIZED VIEW v1 AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW v2 AS SELECT g, s FROM v1 WHERE s > 0"
        )
        feed = ext.flags.cascade_delta_table("v1")
        assert con.catalog.has_table(feed)
        assert "__ivm_cascade_v1" in con.triggers.triggers_on("v1")
        con.execute("DROP MATERIALIZED VIEW v2")
        assert not con.catalog.has_table(feed)
        assert "__ivm_cascade_v1" not in con.triggers.triggers_on("v1")
        # The upstream keeps refreshing incrementally on its own.
        con.execute("INSERT INTO t VALUES ('a', 10)")
        assert con.execute("SELECT g, s FROM v1").sorted() == [
            ("a", 11), ("b", 2),
        ]

    def test_status_and_health_report_dag_shape(self):
        con, ext = self._engine()
        con.execute(
            "CREATE MATERIALIZED VIEW v1 AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW v2 AS SELECT g, s FROM v1 WHERE s > 0"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW v3 AS SELECT SUM(s) AS grand FROM v2"
        )
        status = {entry["view"]: entry for entry in ext.status()}
        assert [status[v]["depth"] for v in ("v1", "v2", "v3")] == [0, 1, 2]
        assert status["v2"]["upstreams"] == ["v1"]
        assert status["v2"]["dependents"] == ["v3"]
        health = {entry["view"]: entry for entry in ext.health()["views"]}
        assert health["v3"]["depth"] == 2
        assert health["v3"]["upstreams"] == ["v2"]
        assert health["v1"]["dependents"] == ["v2"]
        assert health["v1"]["upstream_invalidations"] == 0
        stats = ext.refresh_stats("v3")
        assert stats["dag_depth"] == 2
        assert stats["upstream_invalidations"] == 0

    def test_cascade_views_flag_gates_view_sources(self):
        con = Connection()
        load_ivm(
            con,
            CompilerFlags(mode=PropagationMode.LAZY, cascade_views=False),
        )
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW v1 AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        from repro.errors import UnsupportedError

        with pytest.raises(UnsupportedError):
            con.execute(
                "CREATE MATERIALIZED VIEW v2 AS "
                "SELECT g, s FROM v1 WHERE s > 0"
            )
