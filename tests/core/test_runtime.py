"""Unit tests for the async ingestion runtime (``repro.core.runtime``):
the bounded :class:`IngestQueue` under all three backpressure policies,
watermark/deadline drain triggers, admission counters, the
:class:`DegradationLadder` state machine, and the :class:`RefreshDaemon`
lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.runtime import (
    RUNG_PARALLEL,
    RUNG_RECOMPUTE,
    RUNG_SERIAL,
    RUNG_UNSHARDED,
    DegradationLadder,
    IngestQueue,
    RefreshDaemon,
)
from repro.errors import BackpressureError


def rows(n, start=0, sign=True):
    """n single-column delta rows (value, multiplicity)."""
    return [(float(start + i), sign) for i in range(n)]


class TestEnqueueDrain:
    def test_enqueue_then_drain_preserves_order_and_rows(self):
        q = IngestQueue(capacity=100)
        q.enqueue("t", rows(3))
        q.enqueue("u", rows(2, start=10), retractions=1)
        assert q.depth() == 5
        batches = q.drain()
        assert [(b.table, len(b.rows), b.retractions) for b in batches] == [
            ("t", 3, 0),
            ("u", 2, 1),
        ]
        assert q.depth() == 0
        # Drain on an empty queue is a no-op, not an error.
        assert q.drain() == []

    def test_empty_batch_is_ignored(self):
        q = IngestQueue(capacity=10)
        q.enqueue("t", [])
        assert q.depth() == 0
        assert q.counters["enqueued_batches"] == 0

    def test_counters_track_admission_and_depth(self):
        q = IngestQueue(capacity=100, high_watermark=0.5)
        q.enqueue("t", rows(30))
        q.enqueue("t", rows(40))  # 70 >= high watermark (50)
        snap = q.snapshot()
        assert snap["enqueued_batches"] == 2
        assert snap["enqueued_rows"] == 70
        assert snap["max_depth_rows"] == 70
        assert snap["high_watermark_hits"] == 1
        assert snap["depth_rows"] == 70
        q.drain()
        snap = q.snapshot()
        assert snap["drained_batches"] == 2
        assert snap["drained_rows"] == 70
        assert snap["depth_rows"] == 0

    def test_snapshot_reports_configuration(self):
        q = IngestQueue(
            capacity=200, policy="shed", high_watermark=0.9, low_watermark=0.1
        )
        snap = q.snapshot()
        assert snap["capacity_rows"] == 200
        assert snap["policy"] == "shed"
        assert snap["high_watermark_rows"] == 180
        assert snap["low_watermark_rows"] == 20


class TestShedPolicy:
    def test_overflow_sheds_with_typed_error(self):
        q = IngestQueue(capacity=10, policy="shed")
        q.enqueue("t", rows(8))
        with pytest.raises(BackpressureError):
            q.enqueue("t", rows(5))
        # The queued rows survive; only the overflowing batch was shed.
        assert q.depth() == 8
        assert q.counters["shed_batches"] == 1
        assert q.counters["shed_rows"] == 5

    def test_batch_that_fits_is_admitted_after_a_shed(self):
        q = IngestQueue(capacity=10, policy="shed")
        q.enqueue("t", rows(8))
        with pytest.raises(BackpressureError):
            q.enqueue("t", rows(5))
        q.enqueue("t", rows(2))
        assert q.depth() == 10


class TestBlockPolicy:
    def test_inline_drain_when_no_background_drainer(self):
        q = IngestQueue(capacity=10, policy="block")
        q.drain_callback = q.drain
        q.enqueue("t", rows(8))
        q.enqueue("t", rows(6))  # forces an inline drain of the first 8
        assert q.depth() == 6
        assert q.counters["inline_drains"] == 1
        assert q.counters["blocked_enqueues"] == 1

    def test_oversized_batch_admitted_once_queue_is_empty(self):
        # A batch bigger than the whole queue can never fit; block must
        # drain what it can and then admit it rather than loop forever.
        drains = []
        q = IngestQueue(capacity=4, policy="block")
        q.drain_callback = lambda: drains.append(q.drain())
        q.enqueue("t", rows(3))
        q.enqueue("t", rows(6, start=10))
        assert drains and len(drains[0]) == 1  # the 3-row batch drained
        assert q.depth() == 6  # the oversized batch was admitted whole
        assert q.counters["inline_drains"] == 1

    def test_no_drainer_and_no_callback_sheds(self):
        q = IngestQueue(capacity=10, policy="block")
        q.enqueue("t", rows(8))
        with pytest.raises(BackpressureError):
            q.enqueue("t", rows(5))
        assert q.counters["shed_batches"] == 1

    def test_blocked_writer_waits_for_background_drain(self):
        q = IngestQueue(capacity=10, policy="block", block_timeout=5.0)
        q.attach_drainer()
        q.enqueue("t", rows(10))
        admitted = threading.Event()

        def writer():
            q.enqueue("t", rows(4))
            admitted.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert not admitted.wait(timeout=0.1)  # genuinely blocked
        q.drain()
        assert admitted.wait(timeout=2.0)
        thread.join(timeout=2.0)
        assert q.depth() == 4
        assert q.counters["blocked_enqueues"] >= 1

    def test_blocked_writer_times_out_with_typed_error(self):
        q = IngestQueue(capacity=10, policy="block", block_timeout=0.05)
        q.attach_drainer()  # a drainer that never actually drains
        q.enqueue("t", rows(10))
        with pytest.raises(BackpressureError):
            q.enqueue("t", rows(1))

    def test_detach_drainer_wakes_blocked_writers(self):
        q = IngestQueue(capacity=10, policy="block", block_timeout=5.0)
        q.drain_callback = q.drain
        q.attach_drainer()
        q.enqueue("t", rows(10))
        admitted = threading.Event()

        def writer():
            q.enqueue("t", rows(4))
            admitted.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert not admitted.wait(timeout=0.1)
        # Detaching flips the writer over to the inline-drain path.
        q.detach_drainer()
        assert admitted.wait(timeout=2.0)
        thread.join(timeout=2.0)


class TestCoalescePolicy:
    def test_opposite_sign_rows_annihilate(self):
        q = IngestQueue(capacity=10, policy="coalesce")
        q.enqueue("t", rows(6, sign=True))
        # The retraction of the same 6 rows cancels everything.
        q.enqueue("t", rows(6, sign=False), retractions=6)
        assert q.depth() == 0
        assert q.counters["coalesced_rows"] == 12

    def test_partial_cancellation_keeps_net_rows(self):
        q = IngestQueue(capacity=10, policy="coalesce")
        q.enqueue("t", rows(8, sign=True))
        q.enqueue("t", rows(4, sign=False), retractions=4)  # cancels 4 of 8
        assert q.depth() == 4
        batches = q.drain()
        assert len(batches) == 1
        assert all(row[-1] is True for row in batches[0].rows)

    def test_coalesce_preserves_net_multiset_across_tables(self):
        q = IngestQueue(capacity=10, policy="coalesce")
        q.enqueue("a", rows(5, sign=True))
        q.enqueue("b", rows(5, start=100, sign=True))
        q.enqueue("a", rows(5, sign=False), retractions=5)
        assert q.depth() == 5
        (batch,) = q.drain()
        assert batch.table == "b"
        assert sorted(batch.rows) == sorted(rows(5, start=100, sign=True))

    def test_uncoalescable_overflow_falls_back_to_block(self):
        q = IngestQueue(capacity=10, policy="coalesce")
        q.drain_callback = q.drain
        q.enqueue("t", rows(8, sign=True))
        # All distinct inserts: nothing cancels, so the policy degrades
        # to block (here: inline drain).
        q.enqueue("t", rows(6, start=100, sign=True))
        assert q.depth() == 6
        assert q.counters["inline_drains"] == 1

    def test_duplicate_inserts_never_silently_dropped(self):
        # Same-sign duplicates accumulate multiplicity — coalescing must
        # never cancel them.  12 net rows exceed capacity, so the policy
        # degrades to block; with no drainer attached and no callback the
        # batch sheds with the typed error, and the queue keeps its rows.
        q = IngestQueue(capacity=10, policy="coalesce")
        q.enqueue("t", rows(6, sign=True))
        with pytest.raises(BackpressureError):
            q.enqueue("t", rows(6, sign=True))
        assert q.depth() == 6
        (batch,) = q.drain()
        assert sorted(batch.rows) == sorted(rows(6, sign=True))


class TestDrainTriggers:
    def test_drain_due_on_batch_rows(self):
        q = IngestQueue(capacity=100)
        q.enqueue("t", rows(5))
        assert not q.drain_due(batch_rows=6)
        assert q.drain_due(batch_rows=5)

    def test_drain_due_on_high_watermark(self):
        q = IngestQueue(capacity=100, high_watermark=0.1)
        q.enqueue("t", rows(10))
        assert q.drain_due()  # no batch/deadline trigger needed

    def test_drain_due_on_deadline(self):
        now = [0.0]
        q = IngestQueue(capacity=100, clock=lambda: now[0])
        q.enqueue("t", rows(1))
        assert not q.drain_due(deadline=1.0)
        now[0] = 2.0
        assert q.oldest_age() == 2.0
        assert q.drain_due(deadline=1.0)

    def test_empty_queue_never_due(self):
        q = IngestQueue(capacity=10)
        assert not q.drain_due(batch_rows=1, deadline=0.001)
        assert q.oldest_age() == 0.0

    def test_wake_callback_fires_at_high_watermark(self):
        woke = []
        q = IngestQueue(capacity=10, high_watermark=0.5)
        q.wake_callback = lambda: woke.append(True)
        q.enqueue("t", rows(2))
        assert woke == []
        q.enqueue("t", rows(4))
        assert woke == [True]


class TestDegradationLadder:
    def test_demotes_one_rung_per_failure_bounded_at_recompute(self):
        ladder = DegradationLadder()
        assert ladder.rung == RUNG_PARALLEL
        assert ladder.note_failure() == (RUNG_PARALLEL, RUNG_SERIAL)
        assert ladder.note_failure() == (RUNG_SERIAL, RUNG_UNSHARDED)
        assert ladder.note_failure() == (RUNG_UNSHARDED, RUNG_RECOMPUTE)
        assert ladder.note_failure() == (RUNG_RECOMPUTE, RUNG_RECOMPUTE)
        assert ladder.demotions == 3  # the bounded repeat does not count
        assert ladder.rung_name == "recompute"

    def test_heals_one_rung_after_n_consecutive_cleans(self):
        ladder = DegradationLadder(heal_after=2)
        ladder.note_failure()
        ladder.note_failure()  # rung 2
        assert ladder.note_clean() is None
        assert ladder.note_clean() == (RUNG_UNSHARDED, RUNG_SERIAL)
        assert ladder.note_clean() is None
        assert ladder.note_clean() == (RUNG_SERIAL, RUNG_PARALLEL)
        assert ladder.heals == 2
        # At the top rung cleans are a no-op.
        assert ladder.note_clean() is None
        assert ladder.rung == RUNG_PARALLEL

    def test_failure_resets_the_clean_streak(self):
        ladder = DegradationLadder(heal_after=2)
        ladder.note_failure()
        assert ladder.note_clean() is None
        ladder.note_failure()  # streak gone, rung 2 now
        assert ladder.note_clean() is None
        assert ladder.note_clean() == (RUNG_UNSHARDED, RUNG_SERIAL)

    def test_snapshot_shape(self):
        ladder = DegradationLadder(heal_after=4)
        ladder.note_failure()
        snap = ladder.snapshot()
        assert snap == {
            "rung": RUNG_SERIAL,
            "rung_name": "serial",
            "consecutive_clean": 0,
            "demotions": 1,
            "heals": 0,
        }


class TestRefreshDaemon:
    def test_daemon_drains_on_wake_and_stops_cleanly(self):
        q = IngestQueue(capacity=100, high_watermark=0.1)
        drained = threading.Event()

        def pump():
            q.drain()
            drained.set()

        daemon = RefreshDaemon(q, pump, tick=0.01)
        daemon.start()
        try:
            assert q._has_drainer is True
            q.enqueue("t", rows(20))  # crosses the watermark → wake
            assert drained.wait(timeout=2.0)
            deadline = time.monotonic() + 2.0
            while q.depth() and time.monotonic() < deadline:
                time.sleep(0.005)
            assert q.depth() == 0
        finally:
            daemon.stop()
        assert q._has_drainer is False
        assert daemon._thread is None
        # Idempotent stop.
        daemon.stop()

    def test_pump_errors_are_counted_not_fatal(self):
        q = IngestQueue(capacity=100)
        calls = []

        def pump():
            calls.append(True)
            if len(calls) == 1:
                raise RuntimeError("injected pump failure")
            q.drain()

        daemon = RefreshDaemon(q, pump, tick=0.005)
        daemon.start()
        try:
            q.enqueue("t", rows(1))
            deadline = time.monotonic() + 2.0
            while q.depth() and time.monotonic() < deadline:
                time.sleep(0.005)
            assert q.depth() == 0
        finally:
            daemon.stop()
        assert daemon.errors >= 1
