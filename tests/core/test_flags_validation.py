"""CompilerFlags rejects nonsensical knob values at construction time.

Before this validation a bad knob surfaced as an obscure failure deep in
plan construction (or silently misbehaved, e.g. ``shard_count=0``
routing every row nowhere); now the knob is named in the error.
"""

import pytest

from repro import CompilerFlags
from repro.errors import IVMError, ReproError


def test_defaults_are_valid():
    CompilerFlags()  # must not raise


@pytest.mark.parametrize("count", [0, -1, -64])
def test_shard_count_below_one_rejected(count):
    with pytest.raises(IVMError, match="shard_count"):
        CompilerFlags(shard_count=count)


@pytest.mark.parametrize("size", [0, -5])
def test_batch_size_below_one_rejected(size):
    with pytest.raises(IVMError, match="batch_size"):
        CompilerFlags(batch_size=size)


@pytest.mark.parametrize(
    "steps", [(0,), (5,), (1, 2, 7), (-1, 3), (1, 2, 3, 4, 5)]
)
def test_native_steps_outside_pipeline_rejected(steps):
    with pytest.raises(IVMError, match="native_steps"):
        CompilerFlags(native_steps=steps)


def test_native_steps_error_names_the_invalid_entries():
    with pytest.raises(IVMError, match=r"\(5, 7\)"):
        CompilerFlags(native_steps=(1, 5, 7))


@pytest.mark.parametrize("steps", [(), (1,), (2, 4), (1, 2, 3, 4)])
def test_valid_native_steps_subsets_accepted(steps):
    assert CompilerFlags(native_steps=steps).native_steps == steps


@pytest.mark.parametrize("eps", [-0.1, 1.5, 2.0])
def test_adaptive_epsilon_outside_unit_interval_rejected(eps):
    with pytest.raises(IVMError, match="adaptive_epsilon"):
        CompilerFlags(adaptive_epsilon=eps)


@pytest.mark.parametrize("eps", [0.0, 0.1, 1.0])
def test_adaptive_epsilon_boundaries_accepted(eps):
    assert CompilerFlags(adaptive_epsilon=eps).adaptive_epsilon == eps


def test_adaptive_history_below_one_rejected():
    with pytest.raises(IVMError, match="adaptive_history"):
        CompilerFlags(adaptive_history=0)


def test_checkpoint_every_negative_rejected():
    with pytest.raises(IVMError, match="checkpoint_every"):
        CompilerFlags(checkpoint_every=-1)


def test_errors_are_catchable_as_repro_errors():
    # Callers catching the library-wide base class see flag errors too.
    with pytest.raises(ReproError):
        CompilerFlags(shard_count=0)
