"""The analytic cost model: ranking sanity and perturbation stability.

The headline property: because every plan cost is a positive linear
functional of the signals, the top-ranked plan survives any
multiplicative signal perturbation smaller than the reported
``stability_epsilon`` — the planner's "decision margin" is a real
guarantee, not a heuristic.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.costmodel import (
    SIGNAL_FIELDS,
    PlanShape,
    RefreshSignals,
    coefficients,
    decision_margin,
    plan_cost,
    rank_plans,
    stability_epsilon,
)

# A representative arm set: the four step-2 forms (native step 3), the
# native/SQL step-3 pair, and the two sharded modes.
SHAPES = {
    "upsert": PlanShape(step2_kind="native-upsert", step3_kind="native"),
    "regroup": PlanShape(step2_kind="native-regroup", step3_kind="native"),
    "outer": PlanShape(step2_kind="native-outer", step3_kind="native"),
    "sql2": PlanShape(step2_kind="sql", step3_kind="native"),
    "sql3": PlanShape(step2_kind="native-upsert", step3_kind="sql"),
    "sharded-par": PlanShape(sharded=True, parallel=True, shard_count=4),
    "sharded-ser": PlanShape(sharded=True, parallel=False, shard_count=4),
}

_signals = st.builds(
    RefreshSignals,
    delta_rows=st.integers(0, 200_000),
    view_rows=st.integers(0, 500_000),
    touched_groups=st.integers(0, 200_000),
    retraction_rows=st.integers(0, 100_000),
    max_shard_load=st.integers(0, 200_000),
)


class TestCoefficients:
    def test_all_coefficients_are_nonnegative(self):
        for shape in SHAPES.values():
            for fieldname, weight in coefficients(shape).items():
                assert weight >= 0.0, (shape, fieldname)

    def test_coefficient_fields_match_signal_fields(self):
        for shape in SHAPES.values():
            assert set(coefficients(shape)) == set(SIGNAL_FIELDS)

    def test_cost_is_linear_in_signals(self):
        s = RefreshSignals(
            delta_rows=100, view_rows=5000, touched_groups=40,
            retraction_rows=10, max_shard_load=30,
        )
        doubled = RefreshSignals(
            delta_rows=200, view_rows=10000, touched_groups=80,
            retraction_rows=20, max_shard_load=60,
        )
        for shape in SHAPES.values():
            c = coefficients(shape)["constant"]
            assert math.isclose(
                plan_cost(shape, doubled) - c,
                2 * (plan_cost(shape, s) - c),
                rel_tol=1e-12,
            )


class TestRankingSanity:
    def test_native_step2_beats_sql_step2_on_large_views(self):
        # Small delta into a big view: the SQL step 2 pays |V|.
        s = RefreshSignals(
            delta_rows=50, view_rows=100_000,
            touched_groups=RefreshSignals.bound_touched(50, 100_000),
        )
        assert plan_cost(SHAPES["upsert"], s) < plan_cost(SHAPES["sql2"], s)

    def test_sql_step3_wins_when_view_is_tiny_and_delta_huge(self):
        # One fixed statement over a 10-row view beats 100k native probes.
        s = RefreshSignals(
            delta_rows=100_000, view_rows=10,
            touched_groups=100_000,  # every delta row its own group
        )
        assert plan_cost(SHAPES["sql3"], s) < plan_cost(SHAPES["upsert"], s)

    def test_parallel_sharding_wins_under_uniform_load(self):
        # 4 even shards: hottest shard carries 1/4 of the delta.
        s = RefreshSignals(
            delta_rows=100_000, view_rows=50_000, touched_groups=50_000,
            max_shard_load=25_000,
        )
        assert plan_cost(SHAPES["sharded-par"], s) < plan_cost(
            SHAPES["sharded-ser"], s
        )

    def test_serial_sharding_wins_on_tiny_deltas(self):
        # Barrier overhead dominates when there is almost nothing to do.
        s = RefreshSignals(
            delta_rows=4, view_rows=50_000, touched_groups=4,
            max_shard_load=4,
        )
        assert plan_cost(SHAPES["sharded-ser"], s) < plan_cost(
            SHAPES["sharded-par"], s
        )

    def test_rank_plans_is_sorted_and_total(self):
        s = RefreshSignals(delta_rows=100, view_rows=1000, touched_groups=50)
        ranked = rank_plans(SHAPES, s)
        assert [arm for arm, _ in ranked] == sorted(
            SHAPES, key=lambda a: (plan_cost(SHAPES[a], s), a)
        )
        costs = [cost for _, cost in ranked]
        assert costs == sorted(costs)

    def test_margin_and_epsilon_degenerate_cases(self):
        assert decision_margin([("only", 1.0)]) == float("inf")
        assert stability_epsilon([("only", 1.0)]) == float("inf")
        tie = [("a", 2.0), ("b", 2.0)]
        assert decision_margin(tie) == 0.0
        assert stability_epsilon(tie) == 0.0


@settings(max_examples=200, deadline=None)
@given(
    _signals,
    st.lists(
        st.floats(-1.0, 1.0, allow_nan=False, width=32),
        min_size=len(SIGNAL_FIELDS) - 1,
        max_size=len(SIGNAL_FIELDS) - 1,
    ),
    st.floats(0.0, 0.95, allow_nan=False),
)
def test_ranking_stable_under_perturbation_below_margin(
    signals, directions, shrink
):
    """Perturbing every signal by factors inside (1−ε, 1+ε) with
    ε < stability_epsilon leaves the top-ranked plan on top."""
    ranked = rank_plans(SHAPES, signals)
    eps_star = stability_epsilon(ranked)
    if eps_star == 0.0 or math.isinf(eps_star):
        return  # exact tie (no guarantee) or single arm (trivial)
    eps = min(eps_star, 1.0) * shrink  # strictly inside the margin
    perturbed_values = {
        fieldname: signals.value(fieldname) * (1.0 + eps * direction)
        for fieldname, direction in zip(SIGNAL_FIELDS[1:], directions)
    }
    # Perturbed costs computed directly (RefreshSignals stores ints;
    # the guarantee is about the linear functional, so evaluate it).
    perturbed_costs = {
        arm_id: sum(
            weight
            * (1.0 if f == "constant" else perturbed_values[f])
            for f, weight in coefficients(shape).items()
        )
        for arm_id, shape in SHAPES.items()
    }
    best = ranked[0][0]
    assert all(
        perturbed_costs[best] <= perturbed_costs[other] + 1e-15
        for other in SHAPES
    ), (best, eps, eps_star, perturbed_costs)


@settings(max_examples=100, deadline=None)
@given(_signals)
def test_costs_are_finite_and_nonnegative(signals):
    for shape in SHAPES.values():
        cost = plan_cost(shape, signals)
        assert cost >= 0.0 and math.isfinite(cost)
