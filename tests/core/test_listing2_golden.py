"""Golden test: the compiled output for Listing 1 matches Listing 2's shape.

The paper's Listing 2 shows the generated SQL for

    CREATE MATERIALIZED VIEW query_groups AS
    SELECT group_index, SUM(group_value) AS total_value
    FROM groups GROUP BY group_index;

We assert the compiled script has the same statements with the same
structure.  Two deliberate deviations are tested explicitly:

* the upsert selects the *delta-side* group key (Listing 2 line 11 selects
  ``query_groups.group_index``, which is NULL for brand-new groups — we
  treat that as a bug in the listing and emit the CTE-side key);
* additive combines wrap both sides in COALESCE (the listing only guards
  the view side).
"""

import pytest

from repro.core import CompilerFlags, OpenIVMCompiler

SCHEMA = "CREATE TABLE groups (group_index VARCHAR, group_value INTEGER)"
VIEW = (
    "CREATE MATERIALIZED VIEW query_groups AS "
    "SELECT group_index, SUM(group_value) AS total_value "
    "FROM groups GROUP BY group_index"
)


@pytest.fixture(scope="module")
def compiled():
    compiler = OpenIVMCompiler.from_schema(SCHEMA, CompilerFlags())
    return compiler.compile(VIEW)


class TestSetup:
    def test_delta_table_for_base(self, compiled):
        ddl = "\n".join(compiled.ddl)
        assert (
            "CREATE TABLE IF NOT EXISTS delta_groups (group_index VARCHAR, "
            "group_value INTEGER, _duckdb_ivm_multiplicity BOOLEAN)" in ddl
        )

    def test_matview_table_with_key(self, compiled):
        ddl = "\n".join(compiled.ddl)
        assert (
            "CREATE TABLE query_groups (group_index VARCHAR, "
            "total_value BIGINT, PRIMARY KEY (group_index))" in ddl
        )

    def test_delta_view_table(self, compiled):
        ddl = "\n".join(compiled.ddl)
        assert (
            "CREATE TABLE delta_query_groups (group_index VARCHAR, "
            "total_value BIGINT, _duckdb_ivm_multiplicity BOOLEAN)" in ddl
        )

    def test_metadata_row(self, compiled):
        ddl = "\n".join(compiled.ddl)
        assert "_duckdb_ivm_views" in ddl
        assert "'query_groups'" in ddl

    def test_populate(self, compiled):
        assert compiled.populate == (
            "INSERT INTO query_groups SELECT group_index AS group_index, "
            "SUM(group_value) AS total_value FROM groups GROUP BY group_index"
        )


class TestListing2Statements:
    def statement(self, compiled, index):
        return compiled.propagation[index][1]

    def test_step1_matches_listing_lines_1_to_4(self, compiled):
        # Listing 2 lines 1-4: INSERT INTO delta_query_groups SELECT
        # group_index, SUM(group_value) AS total_value, multiplicity FROM
        # delta_groups GROUP BY group_index, multiplicity.
        assert self.statement(compiled, 0) == (
            "INSERT INTO delta_query_groups SELECT group_index AS group_index, "
            "SUM(group_value) AS total_value, _duckdb_ivm_multiplicity "
            "FROM delta_groups AS groups "
            "GROUP BY group_index, _duckdb_ivm_multiplicity"
        )

    def test_step2_matches_listing_lines_5_to_15(self, compiled):
        sql = self.statement(compiled, 1)
        # Line 5: upsert into the view.
        assert sql.startswith("INSERT OR REPLACE INTO query_groups WITH ivm_cte AS (")
        # Lines 6-10: the signed-CASE CTE grouped by the key.
        assert (
            "SELECT group_index AS group_index, SUM(CASE WHEN "
            "_duckdb_ivm_multiplicity = FALSE THEN -total_value "
            "ELSE total_value END) AS total_value FROM delta_query_groups "
            "GROUP BY group_index" in sql
        )
        # Lines 11-15: combine through LEFT JOIN, CTE aliased to the delta
        # view name exactly as the listing does.
        assert "FROM ivm_cte AS delta_query_groups LEFT JOIN query_groups" in sql
        assert (
            "ON query_groups.group_index = delta_query_groups.group_index" in sql
        )
        assert "GROUP BY delta_query_groups.group_index" in sql

    def test_step2_selects_delta_side_key(self, compiled):
        # The corrected key (see module docstring): delta side, never NULL.
        sql = self.statement(compiled, 1)
        select_clause = sql.split(")", 1)[1]
        closing = select_clause.index("FROM ivm_cte")
        head = select_clause[:closing]
        assert "delta_query_groups.group_index AS group_index" in head
        assert not head.strip().startswith("SELECT query_groups.group_index")

    def test_step2_sum_combine_shape(self, compiled):
        sql = self.statement(compiled, 1)
        assert (
            "SUM(COALESCE(query_groups.total_value, 0) + "
            "COALESCE(delta_query_groups.total_value, 0)) AS total_value" in sql
        )

    def test_step3_matches_listing_line_16(self, compiled):
        assert self.statement(compiled, 2) == (
            "DELETE FROM query_groups WHERE total_value = 0"
        )

    def test_step4_matches_listing_line_17(self, compiled):
        assert self.statement(compiled, 3) == "DELETE FROM delta_groups"
        assert self.statement(compiled, 4) == "DELETE FROM delta_query_groups"

    def test_statement_count(self, compiled):
        # steps 1, 2, 3, and two clears for step 4.
        assert len(compiled.propagation) == 5

    def test_script_contains_everything(self, compiled):
        script = compiled.script()
        for _, sql in compiled.propagation:
            assert sql in script
        for ddl in compiled.ddl:
            assert ddl in script
        assert compiled.populate in script


class TestPaperExample:
    def test_apple_banana_worked_example(self):
        """§2: ΔV = {apple → (false, 3), banana → (true, 1)} over
        V = {apple → (true, 5), banana → (true, 2)} must give
        V' = {apple → 2, banana → 3}."""
        from repro import Connection

        con = Connection()
        con.execute(SCHEMA)
        compiler = OpenIVMCompiler(con.catalog)
        compiled = compiler.compile(VIEW)
        for sql in compiled.ddl:
            con.execute(sql)
        con.execute("INSERT INTO groups VALUES ('apple', 5), ('banana', 2)")
        con.execute(compiled.populate)
        # Base changes (already applied) + the matching delta rows:
        con.execute("DELETE FROM groups WHERE group_index = 'apple'")
        con.execute("INSERT INTO groups VALUES ('apple', 2), ('banana', 1)")
        con.execute(
            "INSERT INTO delta_groups VALUES "
            "('apple', 3, FALSE), ('banana', 1, TRUE)"
        )
        for _, sql in compiled.propagation:
            con.execute(sql)
        assert con.execute(
            "SELECT * FROM query_groups ORDER BY group_index"
        ).rows == [("apple", 2), ("banana", 3)]
