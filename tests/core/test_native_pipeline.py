"""Unit tests for the NativeStep propagation pipeline (steps 1–4).

The differential oracle (tests/properties/test_batch_oracle.py) holds the
end states equal; these tests pin the *structure*: which steps go native
for which view shapes, how the pipeline interleaves native and SQL
execution, and the small kernels and engine APIs the steps are built on.
"""

from __future__ import annotations

import pytest

from repro import (
    CompilerFlags,
    Connection,
    MaterializationStrategy,
    PropagationMode,
    load_ivm,
)
from repro.core.compiler import OpenIVMCompiler
from repro.execution.aggregates import derive_avg, merge_additive, merge_minmax
from repro.zset.incremental import GroupExtremaState, GroupLivenessState


def _compile(view_sql: str, schema_sql: str, **flag_overrides):
    flags = CompilerFlags(**flag_overrides)
    compiler = OpenIVMCompiler.from_schema(schema_sql, flags)
    return compiler.compile(view_sql)


GROUPS_SCHEMA = "CREATE TABLE t (g VARCHAR, v INTEGER)"


class TestPerStepSelection:
    def test_full_surface_runs_all_four_steps(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step1", "step2", "step3", "step4",
        ]
        # Every native step claims at least one SQL label, and the SQL
        # script remains complete (the stored artifact).
        labels = [label for label, _ in compiled.propagation]
        for step in compiled.native_steps:
            assert step.replaces
            assert step.replaces <= set(labels)

    def test_where_clause_runs_step1_natively(self):
        """WHERE views compile the bound predicate through batch_filter,
        so the full pipeline goes native (selection is linear)."""
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t WHERE v > 0 "
            "GROUP BY g",
            GROUPS_SCHEMA,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step1", "step2", "step3", "step4",
        ]
        steps = {s.name: s for s in compiled.native_steps}
        assert steps["step1"].where_eval is not None

    def test_computed_aggregate_argument_runs_native_via_batch_eval(self):
        """Computed aggregate arguments compile through the vectorized
        expression evaluator into an appended source column, so the full
        pipeline stays native."""
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v + 1) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step1", "step2", "step3", "step4",
        ]
        step1 = next(s for s in compiled.native_steps if s.name == "step1")
        assert len(step1.computed) == 1

    def test_computed_key_runs_native_via_batch_eval(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(g) AS gg, SUM(v) AS s, COUNT(*) AS n "
            "FROM t GROUP BY UPPER(g)",
            GROUPS_SCHEMA,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step1", "step2", "step3", "step4",
        ]

    def test_native_expr_eval_off_keeps_computed_step1_on_sql(self):
        """The pre-evaluator behaviour stays selectable: with
        native_expr_eval off, computed expressions fall back to the SQL
        step 1 (and steps 2-4 keep their own selection)."""
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v + 1) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
            native_expr_eval=False,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step2", "step3", "step4",
        ]

    def test_union_regroup_strategy_runs_all_four_steps(self):
        """The UNION-regroup strategy's step 2 now has a native form (the
        signed union + regroup kernel), so the whole pipeline is native."""
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
            strategy=MaterializationStrategy.UNION_REGROUP,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step1", "step2", "step3", "step4",
        ]
        from repro.core.batched import NativeRegroupStep

        step2 = next(s for s in compiled.native_steps if s.name == "step2")
        assert isinstance(step2, NativeRegroupStep)

    def test_full_outer_join_strategy_runs_all_four_steps(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
            strategy=MaterializationStrategy.FULL_OUTER_JOIN,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step1", "step2", "step3", "step4",
        ]
        from repro.core.batched import NativeOuterMergeStep

        step2 = next(s for s in compiled.native_steps if s.name == "step2")
        assert isinstance(step2, NativeOuterMergeStep)

    @pytest.mark.parametrize(
        "strategy, flag",
        [
            (MaterializationStrategy.UNION_REGROUP, "native_union_step2"),
            (MaterializationStrategy.FULL_OUTER_JOIN, "native_foj_step2"),
        ],
    )
    def test_strategy_step2_flags_restore_sql_fallback(self, strategy, flag):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
            strategy=strategy,
            **{flag: False},
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step1", "step3", "step4",
        ]

    def test_minmax_view_runs_native_rescan_step(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY g",
            GROUPS_SCHEMA,
        )
        steps = {s.name: s for s in compiled.native_steps}
        assert set(steps) == {"step1", "step2", "step2b", "step3", "step4"}
        assert steps["step1"].extrema_step is steps["step2b"]
        assert steps["step2b"].requires_base_tables  # state seeds from bases
        assert [c.want_max for c in steps["step2b"].columns] == [False, True]
        # MIN(v) and MAX(v) share one multiset (same source argument).
        assert len(steps["step2b"].sources) == 1

    def test_native_minmax_rescan_flag_keeps_step2b_on_sql(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, MIN(v) AS lo FROM t GROUP BY g",
            GROUPS_SCHEMA,
            native_minmax_rescan=False,
        )
        names = sorted(s.name for s in compiled.native_steps)
        assert names == ["step1", "step2", "step3", "step4"]
        assert next(
            s for s in compiled.native_steps if s.name == "step1"
        ).extrema_step is None

    def test_minmax_computed_key_runs_native_rescan(self):
        """With the vectorized expression evaluator, a computed key no
        longer forces the SQL step 1 — so the extrema state has its
        feeder and step 2b goes native too."""
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(g) AS gg, MIN(v) AS lo FROM t GROUP BY UPPER(g)",
            GROUPS_SCHEMA,
        )
        assert "step2b" in {s.name for s in compiled.native_steps}

    def test_minmax_without_native_step1_keeps_step2b_on_sql(self):
        # native_expr_eval off -> computed key -> no native step 1 ->
        # nothing feeds the extrema state -> the SQL rescan stays.
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(g) AS gg, MIN(v) AS lo FROM t GROUP BY UPPER(g)",
            GROUPS_SCHEMA,
            native_expr_eval=False,
        )
        assert "step2b" not in {s.name for s in compiled.native_steps}

    def test_sum_only_view_uses_counter_liveness_via_step1(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g",
            GROUPS_SCHEMA,
        )
        steps = {s.name: s for s in compiled.native_steps}
        assert set(steps) == {"step1", "step2", "step3", "step4"}
        assert steps["step3"].counters is not None
        assert steps["step3"].requires_base_tables
        assert steps["step1"].liveness_step is steps["step3"]

    def test_sum_only_expression_keys_run_native_counter_liveness(self):
        """Expression-keyed sum-only views now have a native step 1 (the
        computed key is an appended batch column), which feeds the exact
        liveness counters — so steps 1-4 all run natively."""
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(g) AS gg, SUM(v) AS s FROM t GROUP BY UPPER(g)",
            GROUPS_SCHEMA,
        )
        steps = {s.name: s for s in compiled.native_steps}
        assert set(steps) == {"step1", "step2", "step3", "step4"}
        assert steps["step3"].counters is not None
        assert steps["step1"].liveness_step is steps["step3"]

    def test_sum_only_expression_keys_without_evaluator_keep_step3_on_sql(self):
        # native_expr_eval off → no native step 1 → no source-level
        # counts → the paper's SQL step 3 stays.
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(g) AS gg, SUM(v) AS s FROM t GROUP BY UPPER(g)",
            GROUPS_SCHEMA,
            native_expr_eval=False,
        )
        assert sorted(s.name for s in compiled.native_steps) == [
            "step2", "step4",
        ]

    def test_scalar_sum_view_runs_paper_mode_step3(self):
        """Scalar sum-only views run step 3 natively in paper mode: the
        compiled `sum = 0` predicate over the single stored row."""
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS SELECT SUM(v) AS s FROM t",
            GROUPS_SCHEMA,
        )
        steps = {s.name: s for s in compiled.native_steps}
        assert set(steps) == {"step1", "step2", "step3", "step4"}
        assert steps["step3"].paper_predicate is not None
        assert steps["step3"].counters is None
        assert steps["step3"].scalar_key == (0,)

    def test_native_steps_flag_narrows_selection(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
            native_steps=(1,),
        )
        assert [s.name for s in compiled.native_steps] == ["step1"]

    def test_batch_kernels_off_keeps_pure_sql(self):
        compiled = _compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g",
            GROUPS_SCHEMA,
            batch_kernels=False,
        )
        assert compiled.native_steps == []


class TestGroupLivenessState:
    def test_exact_cancellation_reports_dead_groups(self):
        state = GroupLivenessState()
        state.load([(("a",), 2), (("b",), 1)])
        assert state.apply([("a",), ("b",)], [-1, -1]) == [("b",)]
        assert state.count(("a",)) == 1
        assert state.count(("b",)) == 0  # removed; re-insert starts fresh
        assert state.apply([("b",)], [3]) == []
        assert state.count(("b",)) == 3

    def test_unknown_key_with_negative_net_is_dead(self):
        state = GroupLivenessState()
        assert state.apply([("ghost",)], [0]) == [("ghost",)]
        assert len(state) == 0


class TestGroupExtremaState:
    def test_retraction_reveals_runner_up(self):
        state = GroupExtremaState()
        state.load([(("a",), 5, 1), (("a",), 9, 2), (("b",), 3, 1)])
        assert state.extremum(("a",), want_max=True) == 9
        state.apply([("a",)], [9], [-1])  # one of two nines retracted
        assert state.extremum(("a",), want_max=True) == 9
        state.apply([("a",)], [9], [-1])
        assert state.extremum(("a",), want_max=True) == 5
        assert state.extremum(("a",), want_max=False) == 5
        assert state.extremum(("b",), want_max=False) == 3

    def test_dead_group_drops_and_reinserts_fresh(self):
        state = GroupExtremaState()
        state.apply([("g",), ("g",)], [1, 2], [1, 1])
        assert len(state) == 1
        state.apply([("g",), ("g",)], [1, 2], [-1, -1])
        assert len(state) == 0
        assert state.extremum(("g",), want_max=True) is None
        state.apply([("g",)], [7], [1])
        assert state.extremum(("g",), want_max=True) == 7

    def test_nulls_never_enter_the_multiset(self):
        state = GroupExtremaState()
        state.apply([("g",), ("g",)], [None, 4], [1, 1])
        assert state.extremum(("g",), want_max=False) == 4
        state.apply([("g",)], [4], [-1])
        assert state.extremum(("g",), want_max=False) is None

    def test_string_and_mixed_sign_values_order_memcomparably(self):
        state = GroupExtremaState()
        state.apply([(1,)] * 3, ["pear", "apple", "zed"], [1, 1, 1])
        assert state.extremum((1,), want_max=False) == "apple"
        assert state.extremum((1,), want_max=True) == "zed"
        state.apply([(2,)] * 3, [-5, 0, 3], [1, 1, 1])
        assert state.extremum((2,), want_max=False) == -5
        assert state.extremum((2,), want_max=True) == 3


class TestMergeKernels:
    def test_merge_additive_coalesces_like_listing2(self):
        assert merge_additive(None, 5) == 5
        assert merge_additive(3, None) == 3
        assert merge_additive(None, None) == 0
        assert merge_additive(2, -2) == 0

    def test_merge_minmax_skips_nulls_like_least_greatest(self):
        assert merge_minmax(None, 4, want_max=False) == 4
        assert merge_minmax(4, None, want_max=True) == 4
        assert merge_minmax(4, 7, want_max=True) == 7
        assert merge_minmax(4, 7, want_max=False) == 4

    def test_derive_avg_matches_nullif_division(self):
        assert derive_avg(10, 4) == 2.5
        assert derive_avg(0, 0) is None
        assert derive_avg(7, None) is None


class TestEngineBatchAPIs:
    def _table(self):
        con = Connection()
        con.execute(
            "CREATE TABLE kv (k VARCHAR, n INTEGER, PRIMARY KEY (k))"
        )
        return con

    def test_upsert_rows_replaces_by_primary_key(self):
        con = self._table()
        assert con.upsert_rows("kv", [("a", 1), ("b", 2)]) == 2
        assert con.upsert_rows("kv", [("a", 10)]) == 1
        assert con.execute("SELECT k, n FROM kv").sorted() == [
            ("a", 10), ("b", 2),
        ]

    def test_delete_keys_ignores_absent_keys(self):
        con = self._table()
        con.upsert_rows("kv", [("a", 1), ("b", 2)])
        assert con.delete_keys("kv", [("a",), ("ghost",)]) == 1
        assert con.execute("SELECT k FROM kv").sorted() == [("b",)]

    def test_truncate_table_returns_count(self):
        con = self._table()
        con.upsert_rows("kv", [("a", 1), ("b", 2)])
        assert con.truncate_table("kv") == 2
        assert con.execute("SELECT COUNT(*) FROM kv").scalar() == 0


def _refresh_with_statement_spy(con, ext, view_name):
    """Refresh ``view_name`` while recording every SQL statement executed
    (the statement-count hook the zero-SQL proofs and
    examples/native_pipeline.py rely on)."""
    executed: list = []
    original = con.execute_statement

    def spy(statement, parameters=()):
        executed.append(statement)
        return original(statement, parameters)

    con.execute_statement = spy
    try:
        ext.refresh(view_name)
    finally:
        con.execute_statement = original
    return executed


class TestPipelineExecution:
    def test_refresh_skips_replaced_sql_statements(self):
        """With the full-native pipeline, a refresh must not execute any
        propagation SQL (only the DML/SELECT traffic itself)."""
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute(GROUPS_SCHEMA)
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")

        executed: list = []
        original = con.execute_statement

        def spy(statement, parameters=()):
            executed.append(statement)
            return original(statement, parameters)

        con.execute_statement = spy
        ext.refresh("q")
        assert executed == [], (
            "full-native refresh must not round-trip through SQL"
        )
        assert con.execute("SELECT g, s, n FROM q").sorted() == [
            ("a", 1, 1), ("b", 2, 1),
        ]

    def test_minmax_refresh_runs_zero_sql_including_retraction(self):
        """MIN/MAX views historically kept the step-2b rescan on SQL; with
        the native rescan fed by the extrema state, a refresh containing a
        retraction of the current extremum must execute no SQL at all and
        still match the recompute."""
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute(GROUPS_SCHEMA)
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, MIN(v) AS lo, MAX(v) AS hi, COUNT(*) AS n "
            "FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 9), ('b', 4)")
        ext.refresh("q")
        # Retract both extrema of 'a' and kill 'b' in one round.
        con.execute("DELETE FROM t WHERE g = 'a' AND v = 9")
        con.execute("DELETE FROM t WHERE g = 'b'")
        con.execute("INSERT INTO t VALUES ('a', 3)")

        executed: list = []
        original = con.execute_statement

        def spy(statement, parameters=()):
            executed.append(statement)
            return original(statement, parameters)

        con.execute_statement = spy
        ext.refresh("q")
        con.execute_statement = original
        assert executed == [], (
            "MIN/MAX refresh must not round-trip through SQL"
        )
        got = con.execute("SELECT g, lo, hi, n FROM q").sorted()
        want = con.execute(
            "SELECT g, MIN(v), MAX(v), COUNT(*) FROM t GROUP BY g"
        ).sorted()
        assert got == want == [("a", 1, 3, 2)]

    @pytest.mark.parametrize(
        "strategy",
        [
            MaterializationStrategy.UNION_REGROUP,
            MaterializationStrategy.FULL_OUTER_JOIN,
        ],
        ids=lambda s: s.value,
    )
    def test_union_and_foj_strategies_refresh_with_zero_sql(self, strategy):
        """The tentpole acceptance bar: both table-rebuild strategies now
        refresh without a single SQL statement, through their native
        step-2 kernels, and still match the recompute — including a round
        that kills a group (exercising the regroup/outer-merge handoff to
        the native liveness delete)."""
        con = Connection()
        ext = load_ivm(
            con, CompilerFlags(mode=PropagationMode.LAZY, strategy=strategy)
        )
        con.execute(GROUPS_SCHEMA)
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n, AVG(v) AS a "
            "FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 2)")
        assert _refresh_with_statement_spy(con, ext, "q") == []
        con.execute("DELETE FROM t WHERE g = 'b'")
        con.execute("INSERT INTO t VALUES ('a', -4), ('c', 7)")
        assert _refresh_with_statement_spy(con, ext, "q") == [], (
            f"{strategy.value} refresh must not round-trip through SQL"
        )
        got = con.execute("SELECT g, s, n, a FROM q").sorted()
        want = con.execute(
            "SELECT g, SUM(v), COUNT(*), AVG(v) FROM t GROUP BY g"
        ).sorted()
        assert got == want == [("a", 0, 3, 0.0), ("c", 7, 1, 7.0)]

    def test_expression_keyed_view_refreshes_with_zero_sql(self):
        """Computed keys and computed aggregate arguments evaluate through
        batch_eval; the whole refresh stays off SQL and agrees with the
        recompute (including a group kill via the exact counters)."""
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute(GROUPS_SCHEMA)
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(g) AS gg, SUM(v + 1) AS s "
            "FROM t GROUP BY UPPER(g)"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('A', 2), ('b', 5)")
        assert _refresh_with_statement_spy(con, ext, "q") == []
        con.execute("DELETE FROM t WHERE g = 'b'")
        con.execute("INSERT INTO t VALUES ('a', -6)")
        assert _refresh_with_statement_spy(con, ext, "q") == [], (
            "expression-keyed refresh must not round-trip through SQL"
        )
        got = con.execute("SELECT gg, s FROM q").sorted()
        want = con.execute(
            "SELECT UPPER(g), SUM(v + 1) FROM t GROUP BY UPPER(g)"
        ).sorted()
        assert got == want == [("A", 0)]

    def test_scalar_sum_paper_mode_matches_sql_step3(self):
        """Paper-mode step 3: the scalar view's single row is deleted
        exactly when the SQL `DELETE ... WHERE s = 0` would delete it —
        zero-sum deletes the row, non-zero keeps it, and the refresh
        stays off SQL either way."""
        engines = []
        for batch_kernels in (False, True):
            con = Connection()
            ext = load_ivm(
                con,
                CompilerFlags(
                    mode=PropagationMode.LAZY, batch_kernels=batch_kernels
                ),
            )
            con.execute(GROUPS_SCHEMA)
            con.execute(
                "CREATE MATERIALIZED VIEW q AS SELECT SUM(v) AS s FROM t"
            )
            engines.append((con, ext))

        def step(sql):
            for con, _ in engines:
                con.execute(sql)

        def check():
            (con_sql, _), (con_native, ext_native) = engines
            assert _refresh_with_statement_spy(
                con_native, ext_native, "q"
            ) == [], "scalar paper-mode refresh must not round-trip through SQL"
            got_sql = con_sql.execute("SELECT s FROM q").sorted()
            got_native = con_native.execute("SELECT s FROM q").sorted()
            assert got_native == got_sql

        step("INSERT INTO t VALUES ('a', 5), ('b', -5)")
        check()  # sum = 0: both paths delete the row (paper semantics)
        step("INSERT INTO t VALUES ('c', 3)")
        check()  # sum = 3: both paths keep the row


class TestCascadeZeroSql:
    """Zero-SQL proofs for cascaded (view-over-view) refresh: the delta
    of an upstream view reaches its dependents through the in-memory
    cascade feed and the native pipeline, never through propagation SQL."""

    def test_three_level_chain_refreshes_with_zero_sql(self):
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute(GROUPS_SCHEMA)
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 20)")
        con.execute(
            "CREATE MATERIALIZED VIEW v1 AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW v2 AS SELECT g, s FROM v1 WHERE s > 3"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW v3 AS "
            "SELECT SUM(s) AS grand, COUNT(*) AS ng FROM v2"
        )
        # One base change that inserts, kills a group, and flips v2
        # membership — the whole 3-level cascade must stay off SQL.
        con.execute("DELETE FROM t WHERE g = 'b'")
        con.execute("INSERT INTO t VALUES ('a', 4), ('c', 9)")
        assert _refresh_with_statement_spy(con, ext, "v3") == [], (
            "cascaded chain refresh must not round-trip through SQL"
        )
        assert con.execute("SELECT g, s, n FROM v1").sorted() == [
            ("a", 8, 3), ("c", 9, 1),
        ]
        assert con.execute("SELECT g, s FROM v2").sorted() == [
            ("a", 8), ("c", 9),
        ]
        assert con.execute("SELECT grand, ng FROM v3").rows == [(17, 2)]

    def test_diamond_refreshes_with_zero_sql(self):
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute(GROUPS_SCHEMA)
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 2)")
        con.execute(
            "CREATE MATERIALIZED VIEW arm_sum AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW arm_cnt AS "
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g"
        )
        con.execute(
            "CREATE MATERIALIZED VIEW joined AS "
            "SELECT arm_sum.g, SUM(arm_sum.s) AS s, SUM(arm_cnt.n) AS n "
            "FROM arm_sum JOIN arm_cnt ON arm_sum.g = arm_cnt.g "
            "GROUP BY arm_sum.g"
        )
        con.execute("DELETE FROM t WHERE g = 'b'")
        con.execute("INSERT INTO t VALUES ('a', -4), ('c', 7)")
        assert _refresh_with_statement_spy(con, ext, "joined") == [], (
            "diamond refresh must not round-trip through SQL"
        )
        got = con.execute("SELECT g, s, n FROM joined").sorted()
        want = con.execute(
            "SELECT arm_sum.g, SUM(arm_sum.s), SUM(arm_cnt.n) "
            "FROM arm_sum JOIN arm_cnt ON arm_sum.g = arm_cnt.g "
            "GROUP BY arm_sum.g"
        ).sorted()
        assert got == want == [("a", 0, 3), ("c", 7, 1)]

    def test_subquery_where_repair_runs_zero_sql(self):
        """DML on the inner table of an IN-subquery WHERE flips row
        verdicts; the snapshot repair injects the verdict-flip delta
        natively — no SQL, no recompute."""
        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute(GROUPS_SCHEMA)
        con.execute("CREATE TABLE vip (g VARCHAR)")
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2), ('c', 3)")
        con.execute("INSERT INTO vip VALUES ('a')")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t "
            "WHERE g IN (SELECT g FROM vip) GROUP BY g"
        )
        ext.refresh("q")
        # Membership flips both ways, plus base churn, in one round.
        con.execute("INSERT INTO vip VALUES ('b')")
        con.execute("DELETE FROM vip WHERE g = 'a'")
        con.execute("INSERT INTO t VALUES ('b', 10), ('a', 5)")
        assert _refresh_with_statement_spy(con, ext, "q") == [], (
            "subquery-WHERE repair must not round-trip through SQL"
        )
        got = con.execute("SELECT g, s FROM q").sorted()
        want = con.execute(
            "SELECT g, SUM(v) FROM t WHERE g IN (SELECT g FROM vip) "
            "GROUP BY g"
        ).sorted()
        assert got == want == [("b", 12)]
