"""Unit tests for DDL generation and propagation assembly."""

import pytest

from repro import Connection
from repro.core import CompilerFlags, OpenIVMCompiler
from repro.core.ddl import METADATA_TABLE, render_create_table
from repro.core.model import build_model
from repro.core.analyze import analyze_view
from repro.core.propagate import build_propagation, clear_deltas
from repro.datatypes import BIGINT, DOUBLE, VARCHAR
from repro.sql.dialect import DUCKDB, POSTGRES
from repro.sql.parser import parse_one

SCHEMA = "CREATE TABLE t (g VARCHAR, v INTEGER, f DOUBLE)"


def make_model(view_sql: str, flags: CompilerFlags | None = None):
    con = Connection()
    con.execute(SCHEMA)
    query = parse_one(view_sql, allow_materialized=True).query
    analysis = analyze_view("q", query, con.catalog)
    return build_model(analysis, flags or CompilerFlags()), con


class TestRenderCreateTable:
    def test_basic(self):
        sql = render_create_table("t", [("a", VARCHAR), ("b", BIGINT)], DUCKDB)
        assert sql == "CREATE TABLE t (a VARCHAR, b BIGINT)"

    def test_primary_key(self):
        sql = render_create_table(
            "t", [("a", VARCHAR)], DUCKDB, primary_key=["a"]
        )
        assert sql.endswith("(a VARCHAR, PRIMARY KEY (a))")

    def test_if_not_exists(self):
        sql = render_create_table("t", [("a", VARCHAR)], DUCKDB, if_not_exists=True)
        assert sql.startswith("CREATE TABLE IF NOT EXISTS t")

    def test_postgres_type_spelling(self):
        sql = render_create_table("t", [("a", DOUBLE)], POSTGRES)
        assert "DOUBLE PRECISION" in sql

    def test_quoted_identifiers(self):
        sql = render_create_table("weird name", [("select", VARCHAR)], DUCKDB)
        assert '"weird name"' in sql

    def test_ddl_executes_on_engine(self):
        con = Connection()
        sql = render_create_table(
            "t", [("a", VARCHAR), ("b", BIGINT)], DUCKDB, primary_key=["a"]
        )
        con.execute(sql)
        assert con.table("t").schema.primary_key == ["a"]


class TestPropagationAssembly:
    def test_labels_in_execution_order(self):
        model, _ = make_model(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        labels = [label for label, _ in build_propagation(model, DUCKDB)]
        assert labels[0].startswith("step1")
        assert labels[1].startswith("step2")
        assert labels[-2] == "step4: clear delta table delta_t"
        assert labels[-1] == "step4: clear delta view"

    def test_minmax_adds_rescan_step(self):
        model, _ = make_model(
            "CREATE MATERIALIZED VIEW q AS SELECT g, MIN(v) AS lo FROM t GROUP BY g"
        )
        labels = [label for label, _ in build_propagation(model, DUCKDB)]
        assert any("step2b" in label for label in labels)

    def test_clear_deltas_order(self):
        model, _ = make_model(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        assert clear_deltas(model, DUCKDB) == [
            "DELETE FROM delta_t",
            "DELETE FROM delta_q",
        ]

    def test_step3_uses_liveness_when_present(self):
        model, _ = make_model(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            CompilerFlags(hidden_count=True),
        )
        step3 = [s for label, s in build_propagation(model, DUCKDB) if "step3" in label]
        assert step3 == ["DELETE FROM q WHERE _duckdb_ivm_count <= 0"]

    def test_step3_multiple_sums_conjoined(self):
        model, _ = make_model(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s1, SUM(f) AS s2 FROM t GROUP BY g"
        )
        step3 = [s for label, s in build_propagation(model, DUCKDB) if "step3" in label]
        assert step3 == ["DELETE FROM q WHERE s1 = 0 AND s2 = 0"]


class TestGeneratedDdlExecutes:
    @pytest.mark.parametrize(
        "view_sql",
        [
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g",
            "CREATE MATERIALIZED VIEW q AS SELECT g, AVG(f) AS a FROM t GROUP BY g",
            "CREATE MATERIALIZED VIEW q AS SELECT g, v FROM t WHERE v > 0",
            "CREATE MATERIALIZED VIEW q AS SELECT SUM(v) AS s FROM t",
        ],
    )
    def test_all_ddl_and_populate_run(self, view_sql):
        con = Connection()
        con.execute(SCHEMA)
        con.execute("INSERT INTO t VALUES ('a', 1, 0.5), ('b', 2, 1.5)")
        compiled = OpenIVMCompiler(con.catalog).compile(view_sql)
        for sql in compiled.ddl:
            con.execute(sql)
        con.execute(compiled.populate)
        for _, sql in compiled.propagation:
            con.execute(sql)  # empty deltas: must still be valid SQL
        assert con.catalog.has_table("q")
        assert con.execute(f"SELECT COUNT(*) FROM {METADATA_TABLE}").scalar() == 1

    def test_metadata_table_shared_across_views(self):
        con = Connection()
        con.execute(SCHEMA)
        compiler = OpenIVMCompiler(con.catalog)
        for name in ("q1", "q2"):
            compiled = compiler.compile(
                f"CREATE MATERIALIZED VIEW {name} AS "
                "SELECT g, SUM(v) AS s FROM t GROUP BY g"
            )
            for sql in compiled.ddl:
                con.execute(sql)
        rows = con.execute(f"SELECT view_name FROM {METADATA_TABLE} ORDER BY 1").rows
        assert rows == [("q1",), ("q2",)]

    def test_view_sql_quoting_in_metadata(self):
        con = Connection()
        con.execute(SCHEMA)
        compiled = OpenIVMCompiler(con.catalog).compile(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t WHERE g = 'o''brien' GROUP BY g"
        )
        for sql in compiled.ddl:
            con.execute(sql)
        stored = con.execute(
            f"SELECT view_sql FROM {METADATA_TABLE}"
        ).scalar()
        # Stored as renderable SQL text: the quote stays escaped.
        assert "o''brien" in stored
