"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import CompilerFlags, Connection, PropagationMode, load_ivm


@pytest.fixture
def con() -> Connection:
    """A fresh embedded engine connection."""
    return Connection()


@pytest.fixture
def ivm_con():
    """Factory: a connection with the OpenIVM extension loaded.

    Usage: ``con, ext = ivm_con()`` or ``con, ext = ivm_con(strategy=...)``.
    """

    def factory(**flag_overrides):
        flag_overrides.setdefault("mode", PropagationMode.LAZY)
        flags = CompilerFlags(**flag_overrides)
        connection = Connection()
        extension = load_ivm(connection, flags)
        return connection, extension

    return factory


def assert_view_matches(con: Connection, view_sql: str, view_name: str) -> None:
    """The materialized view's visible contents must equal recomputation."""
    recomputed = con.execute(view_sql)
    materialized = con.execute(
        f"SELECT {', '.join(recomputed.columns)} FROM {view_name}"
    )
    assert materialized.sorted() == recomputed.sorted()
