"""Join execution tests: all join types, NULL keys, residual predicates."""

import pytest

from repro import Connection


@pytest.fixture
def loaded(con: Connection) -> Connection:
    con.execute("CREATE TABLE l (k INTEGER, a VARCHAR)")
    con.execute("CREATE TABLE r (k INTEGER, b VARCHAR)")
    con.execute("INSERT INTO l VALUES (1, 'l1'), (2, 'l2'), (NULL, 'ln')")
    con.execute("INSERT INTO r VALUES (1, 'r1'), (1, 'r1x'), (3, 'r3'), (NULL, 'rn')")
    return con


class TestInnerJoin:
    def test_hash_join_on_equality(self, loaded):
        rows = loaded.execute(
            "SELECT l.a, r.b FROM l JOIN r ON l.k = r.k ORDER BY 1, 2"
        ).rows
        assert rows == [("l1", "r1"), ("l1", "r1x")]

    def test_null_keys_never_match(self, loaded):
        rows = loaded.execute("SELECT COUNT(*) FROM l JOIN r ON l.k = r.k").rows
        assert rows == [(2,)]

    def test_using_clause(self, loaded):
        rows = loaded.execute("SELECT l.a FROM l JOIN r USING (k) ORDER BY 1").rows
        assert rows == [("l1",), ("l1",)]

    def test_residual_predicate_after_hash_match(self, loaded):
        rows = loaded.execute(
            "SELECT l.a, r.b FROM l JOIN r ON l.k = r.k AND r.b = 'r1'"
        ).rows
        assert rows == [("l1", "r1")]

    def test_non_equi_join_nested_loop(self, loaded):
        rows = loaded.execute(
            "SELECT l.k, r.k FROM l JOIN r ON l.k < r.k ORDER BY 1, 2"
        ).rows
        assert rows == [(1, 3), (2, 3)]

    def test_self_join(self, loaded):
        rows = loaded.execute(
            "SELECT x.a, y.a FROM l x JOIN l y ON x.k = y.k ORDER BY 1"
        ).rows
        assert rows == [("l1", "l1"), ("l2", "l2")]


class TestOuterJoins:
    def test_left_join_pads_unmatched(self, loaded):
        rows = loaded.execute(
            "SELECT l.a, r.b FROM l LEFT JOIN r ON l.k = r.k ORDER BY 1"
        ).rows
        assert ("l2", None) in rows and ("ln", None) in rows
        assert len(rows) == 4

    def test_right_join(self, loaded):
        rows = loaded.execute(
            "SELECT l.a, r.b FROM l RIGHT JOIN r ON l.k = r.k"
        ).sorted()
        assert (None, "r3") in rows and (None, "rn") in rows
        assert len(rows) == 4

    def test_full_outer_join(self, loaded):
        rows = loaded.execute(
            "SELECT l.a, r.b FROM l FULL OUTER JOIN r ON l.k = r.k"
        ).rows
        assert len(rows) == 6  # 2 matches + 2 left-only + 2 right-only

    def test_left_join_condition_not_filter(self, loaded):
        # Extra condition in ON limits matches but keeps left rows.
        rows = loaded.execute(
            "SELECT l.a, r.b FROM l LEFT JOIN r ON l.k = r.k AND r.b = 'r1'"
        ).rows
        assert ("l1", "r1") in rows
        assert len(rows) == 3  # every left row exactly once except dup match

    def test_where_after_left_join_filters(self, loaded):
        rows = loaded.execute(
            "SELECT l.a FROM l LEFT JOIN r ON l.k = r.k WHERE r.b IS NULL ORDER BY 1"
        ).rows
        assert rows == [("l2",), ("ln",)]

    def test_full_outer_non_equi(self, loaded):
        rows = loaded.execute(
            "SELECT COUNT(*) FROM l FULL OUTER JOIN r ON l.k + 10 = r.k"
        ).scalar()
        assert rows == 7  # no matches: 3 left + 4 right


class TestCrossJoin:
    def test_cross_join(self, loaded):
        assert loaded.execute("SELECT COUNT(*) FROM l CROSS JOIN r").scalar() == 12

    def test_comma_cross_join_with_where(self, loaded):
        rows = loaded.execute(
            "SELECT l.a, r.b FROM l, r WHERE l.k = r.k ORDER BY 1, 2"
        ).rows
        assert rows == [("l1", "r1"), ("l1", "r1x")]


class TestMultiWayJoins:
    def test_three_way(self, con):
        con.execute("CREATE TABLE a (k INTEGER)")
        con.execute("CREATE TABLE b (k INTEGER)")
        con.execute("CREATE TABLE c (k INTEGER)")
        for t in "abc":
            con.execute(f"INSERT INTO {t} VALUES (1), (2)")
        rows = con.execute(
            "SELECT a.k FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k ORDER BY 1"
        ).rows
        assert rows == [(1,), (2,)]

    def test_join_aggregation(self, loaded):
        rows = loaded.execute(
            "SELECT l.k, COUNT(*) FROM l JOIN r ON l.k = r.k GROUP BY l.k"
        ).rows
        assert rows == [(1, 2)]

    def test_join_derived_table(self, loaded):
        rows = loaded.execute(
            "SELECT l.a, m.c FROM l JOIN "
            "(SELECT k, COUNT(*) AS c FROM r GROUP BY k) AS m ON l.k = m.k"
        ).rows
        assert rows == [("l1", 2)]
