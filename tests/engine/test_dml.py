"""DDL and DML execution tests: create/drop, insert/update/delete, upsert."""

import pytest

from repro import Connection
from repro.errors import (
    CatalogError,
    ConstraintError,
    ExecutionError,
    UnsupportedError,
)


class TestCreateDrop:
    def test_create_and_describe(self, con):
        con.execute("CREATE TABLE t (a VARCHAR(10), b DECIMAL(8, 2), c BOOL)")
        schema = con.table("t").schema
        assert [str(c.type) for c in schema.columns] == [
            "VARCHAR(10)",
            "DOUBLE",
            "BOOLEAN",
        ]

    def test_duplicate_create_raises(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(CatalogError):
            con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")  # ok

    def test_create_table_as(self, con):
        con.execute("CREATE TABLE src (a INTEGER)")
        con.execute("INSERT INTO src VALUES (1), (2)")
        con.execute("CREATE TABLE dst AS SELECT a * 2 AS doubled FROM src")
        assert con.execute("SELECT doubled FROM dst ORDER BY 1").rows == [(2,), (4,)]

    def test_drop_table(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            con.execute("SELECT * FROM t")
        con.execute("DROP TABLE IF EXISTS t")  # no error
        with pytest.raises(CatalogError):
            con.execute("DROP TABLE t")

    def test_create_drop_index(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("CREATE INDEX idx ON t (a)")
        assert con.table("t").has_index("idx")
        con.execute("DROP INDEX idx")
        assert not con.table("t").has_index("idx")

    def test_drop_table_drops_its_indexes(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("CREATE INDEX idx ON t (a)")
        con.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            con.catalog.index("idx")

    def test_plain_view(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (5)")
        con.execute("CREATE VIEW big AS SELECT a FROM t WHERE a > 2")
        assert con.execute("SELECT * FROM big").rows == [(5,)]
        con.execute("INSERT INTO t VALUES (9)")
        assert len(con.execute("SELECT * FROM big").rows) == 2  # not materialized
        con.execute("DROP VIEW big")
        with pytest.raises(CatalogError):
            con.execute("SELECT * FROM big")


class TestInsert:
    def test_values_multiple_rows(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        result = con.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2

    def test_column_list_reorders_and_fills_nulls(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b VARCHAR, c DOUBLE)")
        con.execute("INSERT INTO t (b, a) VALUES ('x', 1)")
        assert con.execute("SELECT * FROM t").rows == [(1, "x", None)]

    def test_insert_select(self, con):
        con.execute("CREATE TABLE src (a INTEGER)")
        con.execute("CREATE TABLE dst (a INTEGER)")
        con.execute("INSERT INTO src VALUES (1), (2), (3)")
        result = con.execute("INSERT INTO dst SELECT a FROM src WHERE a > 1")
        assert result.rowcount == 2

    def test_insert_coerces(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES ('42')")
        assert con.execute("SELECT a FROM t").scalar() == 42

    def test_arity_mismatch(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        with pytest.raises(ExecutionError):
            con.execute("INSERT INTO t VALUES (1)")

    def test_insert_with_parameters(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        con.execute("INSERT INTO t VALUES (?, ?)", [5, "param"])
        assert con.execute("SELECT * FROM t").rows == [(5, "param")]


class TestUpsert:
    def test_insert_or_replace(self, con):
        con.execute("CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("INSERT OR REPLACE INTO t VALUES ('a', 2), ('b', 3)")
        assert con.execute("SELECT * FROM t ORDER BY k").rows == [("a", 2), ("b", 3)]

    def test_upsert_requires_pk(self, con):
        con.execute("CREATE TABLE t (k VARCHAR)")
        with pytest.raises(ExecutionError):
            con.execute("INSERT OR REPLACE INTO t VALUES ('a')")

    def test_pk_violation_on_plain_insert(self, con):
        con.execute("CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        with pytest.raises(ConstraintError):
            con.execute("INSERT INTO t VALUES ('a', 2)")

    def test_upsert_from_select(self, con):
        con.execute("CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
        con.execute("CREATE TABLE s (k VARCHAR, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("INSERT INTO s VALUES ('a', 10), ('b', 20)")
        con.execute("INSERT OR REPLACE INTO t SELECT k, v FROM s")
        assert con.execute("SELECT * FROM t ORDER BY k").rows == [("a", 10), ("b", 20)]


class TestDeleteUpdate:
    def test_delete_where(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2), (3)")
        result = con.execute("DELETE FROM t WHERE a >= 2")
        assert result.rowcount == 2
        assert con.execute("SELECT * FROM t").rows == [(1,)]

    def test_delete_all(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2)")
        assert con.execute("DELETE FROM t").rowcount == 2
        assert len(con.table("t")) == 0

    def test_update_with_expression(self, con):
        con.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        con.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        result = con.execute("UPDATE t SET b = b + a WHERE a = 2")
        assert result.rowcount == 1
        assert con.execute("SELECT b FROM t ORDER BY a").rows == [(10,), (22,)]

    def test_update_all_rows(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2)")
        con.execute("UPDATE t SET a = 0")
        assert con.execute("SELECT DISTINCT a FROM t").rows == [(0,)]

    def test_update_pk_column(self, con):
        con.execute("CREATE TABLE t (k VARCHAR PRIMARY KEY, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("UPDATE t SET k = 'b' WHERE k = 'a'")
        assert con.table("t").pk_lookup(["b"]) == ("b", 1)
        assert con.table("t").pk_lookup(["a"]) is None


class TestMisc:
    def test_pragma_roundtrip(self, con):
        con.execute("PRAGMA ivm_chunked_index_build = TRUE")
        assert con.pragmas["ivm_chunked_index_build"] is True

    def test_begin_commit_are_noops(self, con):
        con.execute("BEGIN")
        con.execute("COMMIT")

    def test_rollback_unsupported(self, con):
        with pytest.raises(UnsupportedError):
            con.execute("ROLLBACK")

    def test_matview_requires_extension(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(Exception):
            con.execute("CREATE MATERIALIZED VIEW v AS SELECT a FROM t")

    def test_refresh_requires_extension(self, con):
        with pytest.raises(UnsupportedError):
            con.execute("REFRESH MATERIALIZED VIEW v")
