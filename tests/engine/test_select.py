"""End-to-end SELECT execution tests on the embedded engine."""

import pytest

from repro import Connection
from repro.errors import BinderError, CatalogError, ExecutionError


@pytest.fixture
def loaded(con: Connection) -> Connection:
    con.execute("CREATE TABLE t (k VARCHAR, v INTEGER, f DOUBLE)")
    con.execute(
        "INSERT INTO t VALUES "
        "('a', 1, 0.5), ('a', 2, 1.5), ('b', 3, NULL), ('c', NULL, 2.0)"
    )
    return con


class TestProjectionFilter:
    def test_select_star(self, loaded):
        assert len(loaded.execute("SELECT * FROM t").rows) == 4

    def test_column_subset_and_expression(self, loaded):
        rows = loaded.execute("SELECT k, v * 10 FROM t WHERE v >= 2 ORDER BY v").rows
        assert rows == [("a", 20), ("b", 30)]

    def test_where_null_filtered_out(self, loaded):
        # v = NULL comparisons are UNKNOWN, not TRUE: row 'c' must not appear.
        rows = loaded.execute("SELECT k FROM t WHERE v > 0").rows
        assert ("c",) not in rows

    def test_is_null_predicate(self, loaded):
        assert loaded.execute("SELECT k FROM t WHERE v IS NULL").rows == [("c",)]

    def test_boolean_connectives_three_valued(self, loaded):
        # NULL OR TRUE = TRUE → row included.
        rows = loaded.execute("SELECT k FROM t WHERE v IS NULL OR k = 'b' ORDER BY k").rows
        assert rows == [("b",), ("c",)]

    def test_between_and_in(self, loaded):
        assert loaded.execute("SELECT COUNT(*) FROM t WHERE v BETWEEN 1 AND 2").scalar() == 2
        assert loaded.execute("SELECT COUNT(*) FROM t WHERE k IN ('a', 'c')").scalar() == 3

    def test_like(self, loaded):
        loaded.execute("INSERT INTO t VALUES ('abc', 9, 0.0)")
        assert loaded.execute("SELECT COUNT(*) FROM t WHERE k LIKE 'a%'").scalar() == 3
        assert loaded.execute("SELECT COUNT(*) FROM t WHERE k LIKE '_bc'").scalar() == 1

    def test_case_expression(self, loaded):
        rows = loaded.execute(
            "SELECT k, CASE WHEN v IS NULL THEN 'none' WHEN v < 3 THEN 'small' "
            "ELSE 'big' END FROM t ORDER BY k, v"
        ).rows
        assert ("c", "none") in rows and ("b", "big") in rows

    def test_cast_and_concat(self, loaded):
        row = loaded.execute("SELECT k || '-' || CAST(v AS VARCHAR) FROM t WHERE v = 3").scalar()
        assert row == "b-3"

    def test_arithmetic_null_propagation(self, loaded):
        assert loaded.execute("SELECT v + 1 FROM t WHERE k = 'c'").scalar() is None

    def test_division_is_float(self, loaded):
        assert loaded.execute("SELECT 3 / 2").scalar() == 1.5

    def test_division_by_zero_raises(self, loaded):
        with pytest.raises(ExecutionError):
            loaded.execute("SELECT 1 / 0")

    def test_scalar_functions(self, loaded):
        assert loaded.execute("SELECT UPPER('ab'), LENGTH('abc'), ABS(-4)").rows == [
            ("AB", 3, 4)
        ]
        assert loaded.execute("SELECT COALESCE(NULL, NULL, 7)").scalar() == 7
        assert loaded.execute("SELECT SUBSTR('hello', 2, 3)").scalar() == "ell"
        assert loaded.execute("SELECT NULLIF(5, 5)").scalar() is None
        assert loaded.execute("SELECT LEAST(3, NULL, 1)").scalar() == 1
        assert loaded.execute("SELECT GREATEST(3, NULL, 1)").scalar() == 3

    def test_parameters(self, loaded):
        rows = loaded.execute("SELECT k FROM t WHERE v = ?", [3]).rows
        assert rows == [("b",)]

    def test_missing_parameter_raises(self, loaded):
        with pytest.raises(ExecutionError):
            loaded.execute("SELECT ? ")


class TestOrderLimit:
    def test_order_by_column(self, loaded):
        rows = loaded.execute("SELECT v FROM t ORDER BY v").rows
        assert rows == [(1,), (2,), (3,), (None,)]  # NULLS LAST ascending

    def test_order_desc_nulls_first(self, loaded):
        rows = loaded.execute("SELECT v FROM t ORDER BY v DESC").rows
        assert rows == [(None,), (3,), (2,), (1,)]

    def test_order_by_ordinal(self, loaded):
        rows = loaded.execute("SELECT k, v FROM t ORDER BY 2 DESC LIMIT 1").rows
        assert rows[0][1] is None

    def test_order_by_alias(self, loaded):
        rows = loaded.execute("SELECT v * -1 AS neg FROM t WHERE v IS NOT NULL ORDER BY neg").rows
        assert rows == [(-3,), (-2,), (-1,)]

    def test_limit_offset(self, loaded):
        rows = loaded.execute("SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 1").rows
        assert rows == [(2,), (3,)]

    def test_multi_key_order(self, loaded):
        rows = loaded.execute("SELECT k, v FROM t ORDER BY k DESC, v DESC").rows
        assert rows[0][0] == "c"
        assert rows[-1] == ("a", 1)


class TestDistinctAndSetOps:
    def test_distinct(self, loaded):
        rows = loaded.execute("SELECT DISTINCT k FROM t ORDER BY k").rows
        assert rows == [("a",), ("b",), ("c",)]

    def test_union_all_and_union(self, loaded):
        assert len(loaded.execute("SELECT 1 UNION ALL SELECT 1").rows) == 2
        assert len(loaded.execute("SELECT 1 UNION SELECT 1").rows) == 1

    def test_except(self, loaded):
        rows = loaded.execute(
            "SELECT k FROM t EXCEPT SELECT 'a'"
        ).sorted()
        assert rows == [("b",), ("c",)]

    def test_intersect(self, loaded):
        rows = loaded.execute("SELECT k FROM t INTERSECT SELECT 'a'").rows
        assert rows == [("a",)]

    def test_arity_mismatch_raises(self, loaded):
        with pytest.raises(BinderError):
            loaded.execute("SELECT 1 UNION SELECT 1, 2")


class TestCtes:
    def test_basic_cte(self, loaded):
        rows = loaded.execute(
            "WITH sums AS (SELECT k, SUM(v) AS s FROM t GROUP BY k) "
            "SELECT k FROM sums WHERE s > 2 ORDER BY k"
        ).rows
        assert rows == [("a",), ("b",)]

    def test_cte_referenced_twice(self, loaded):
        rows = loaded.execute(
            "WITH c AS (SELECT DISTINCT k FROM t) "
            "SELECT a.k FROM c a JOIN c b ON a.k = b.k ORDER BY 1"
        ).rows
        assert len(rows) == 3

    def test_cte_column_rename(self, loaded):
        rows = loaded.execute(
            "WITH c (name) AS (SELECT DISTINCT k FROM t) "
            "SELECT name FROM c ORDER BY name"
        ).rows
        assert rows[0] == ("a",)

    def test_cte_shadows_table(self, loaded):
        rows = loaded.execute("WITH t AS (SELECT 1 AS only) SELECT * FROM t").rows
        assert rows == [(1,)]


class TestErrors:
    def test_unknown_table(self, con):
        with pytest.raises(CatalogError):
            con.execute("SELECT * FROM nope")

    def test_unknown_column(self, loaded):
        with pytest.raises(BinderError):
            loaded.execute("SELECT missing FROM t")

    def test_ambiguous_column(self, loaded):
        loaded.execute("CREATE TABLE t2 (k VARCHAR)")
        with pytest.raises(BinderError):
            loaded.execute("SELECT k FROM t, t2")

    def test_unknown_function(self, loaded):
        with pytest.raises(BinderError):
            loaded.execute("SELECT MYSTERY(v) FROM t")

    def test_explain_renders_tree(self, loaded):
        text = loaded.explain("SELECT k, SUM(v) FROM t WHERE v > 0 GROUP BY k")
        assert "AGGREGATE" in text and "GET t" in text and "FILTER" in text
