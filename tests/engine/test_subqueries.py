"""Uncorrelated subqueries: scalar, EXISTS, IN."""

import pytest

from repro import Connection
from repro.errors import BinderError, ExecutionError


@pytest.fixture
def loaded(con: Connection) -> Connection:
    con.execute("CREATE TABLE t (k VARCHAR, v INTEGER)")
    con.execute("INSERT INTO t VALUES ('a', 1), ('b', 5), ('c', NULL)")
    con.execute("CREATE TABLE other (v INTEGER)")
    con.execute("INSERT INTO other VALUES (5), (7)")
    return con


class TestScalarSubquery:
    def test_in_select_list(self, loaded):
        assert loaded.execute("SELECT (SELECT MAX(v) FROM t)").scalar() == 5

    def test_in_where(self, loaded):
        rows = loaded.execute(
            "SELECT k FROM t WHERE v = (SELECT MAX(v) FROM t)"
        ).rows
        assert rows == [("b",)]

    def test_empty_subquery_is_null(self, loaded):
        value = loaded.execute("SELECT (SELECT v FROM t WHERE v > 100)").scalar()
        assert value is None

    def test_multi_row_raises(self, loaded):
        with pytest.raises(ExecutionError):
            loaded.execute("SELECT (SELECT v FROM t)")

    def test_multi_column_rejected(self, loaded):
        with pytest.raises(BinderError):
            loaded.execute("SELECT (SELECT k, v FROM t)")

    def test_arithmetic_on_subquery(self, loaded):
        assert loaded.execute("SELECT (SELECT MIN(v) FROM t) + 10").scalar() == 11


class TestExists:
    def test_exists_true(self, loaded):
        assert loaded.execute("SELECT EXISTS (SELECT 1 FROM t WHERE v = 5)").scalar() is True

    def test_exists_false(self, loaded):
        assert loaded.execute("SELECT EXISTS (SELECT 1 FROM t WHERE v = 99)").scalar() is False

    def test_not_exists(self, loaded):
        assert loaded.execute("SELECT NOT EXISTS (SELECT 1 FROM t WHERE v = 99)").scalar() is True

    def test_exists_in_where(self, loaded):
        rows = loaded.execute(
            "SELECT k FROM t WHERE EXISTS (SELECT 1 FROM other WHERE v = 7) ORDER BY k"
        ).rows
        assert len(rows) == 3


class TestInSubquery:
    def test_in(self, loaded):
        rows = loaded.execute("SELECT k FROM t WHERE v IN (SELECT v FROM other)").rows
        assert rows == [("b",)]

    def test_not_in(self, loaded):
        rows = loaded.execute(
            "SELECT k FROM t WHERE v NOT IN (SELECT v FROM other)"
        ).rows
        assert rows == [("a",)]  # NULL v row yields UNKNOWN, filtered

    def test_not_in_with_null_in_list_is_unknown(self, loaded):
        loaded.execute("INSERT INTO other VALUES (NULL)")
        rows = loaded.execute(
            "SELECT k FROM t WHERE v NOT IN (SELECT v FROM other)"
        ).rows
        assert rows == []  # NULL in the list poisons NOT IN entirely

    def test_in_empty_subquery(self, loaded):
        rows = loaded.execute(
            "SELECT k FROM t WHERE v IN (SELECT v FROM other WHERE v > 100)"
        ).rows
        assert rows == []

    def test_subquery_executed_once_cached(self, loaded):
        # Smoke test: large outer + IN subquery completes fast (cache works).
        loaded.execute("CREATE TABLE big (v INTEGER)")
        for chunk in range(20):
            loaded.execute(
                "INSERT INTO big SELECT v FROM t"
            )
        result = loaded.execute("SELECT COUNT(*) FROM big WHERE v IN (SELECT v FROM other)")
        assert result.scalar() == 20
