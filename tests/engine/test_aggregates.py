"""Aggregation execution tests: grouping, NULLs, DISTINCT, HAVING."""

import pytest

from repro import Connection
from repro.errors import BinderError


@pytest.fixture
def loaded(con: Connection) -> Connection:
    con.execute("CREATE TABLE s (g VARCHAR, sub VARCHAR, v INTEGER)")
    con.execute(
        "INSERT INTO s VALUES "
        "('a', 'x', 1), ('a', 'x', 2), ('a', 'y', NULL), "
        "('b', 'x', 5), (NULL, 'y', 7)"
    )
    return con


class TestGroupBy:
    def test_sum_count_per_group(self, loaded):
        rows = loaded.execute(
            "SELECT g, SUM(v), COUNT(v), COUNT(*) FROM s GROUP BY g ORDER BY g"
        ).rows
        assert rows == [("a", 3, 2, 3), ("b", 5, 1, 1), (None, 7, 1, 1)]

    def test_null_group_key_forms_one_group(self, loaded):
        loaded.execute("INSERT INTO s VALUES (NULL, 'z', 1)")
        rows = loaded.execute("SELECT g, COUNT(*) FROM s WHERE g IS NULL GROUP BY g").rows
        assert rows == [(None, 2)]

    def test_multi_column_group(self, loaded):
        rows = loaded.execute(
            "SELECT g, sub, COUNT(*) FROM s GROUP BY g, sub ORDER BY g, sub"
        ).rows
        assert ("a", "x", 2) in rows and ("a", "y", 1) in rows

    def test_group_by_expression(self, loaded):
        rows = loaded.execute(
            "SELECT LENGTH(sub), COUNT(*) FROM s GROUP BY LENGTH(sub)"
        ).rows
        assert rows == [(1, 5)]

    def test_group_by_ordinal_and_alias(self, loaded):
        by_ordinal = loaded.execute("SELECT g, COUNT(*) FROM s GROUP BY 1").sorted()
        by_alias = loaded.execute(
            "SELECT g AS grp, COUNT(*) FROM s GROUP BY grp"
        ).sorted()
        assert by_ordinal == by_alias

    def test_qualified_and_unqualified_group_match(self, loaded):
        rows = loaded.execute(
            "SELECT s.g, COUNT(*) FROM s GROUP BY g ORDER BY 1"
        ).rows
        assert len(rows) == 3

    def test_expression_over_group_key(self, loaded):
        rows = loaded.execute(
            "SELECT g || '!', SUM(v) FROM s WHERE g IS NOT NULL GROUP BY g ORDER BY 1"
        ).rows
        assert rows == [("a!", 3), ("b!", 5)]

    def test_expression_combining_aggregates(self, loaded):
        rows = loaded.execute(
            "SELECT g, SUM(v) * 1.0 / COUNT(*) FROM s WHERE g = 'a' GROUP BY g"
        ).rows
        assert rows == [("a", 1.0)]

    def test_non_grouped_column_rejected(self, loaded):
        with pytest.raises(BinderError):
            loaded.execute("SELECT g, sub FROM s GROUP BY g")

    def test_aggregate_in_where_rejected(self, loaded):
        with pytest.raises(BinderError):
            loaded.execute("SELECT g FROM s WHERE SUM(v) > 1 GROUP BY g")


class TestAggregateSemantics:
    def test_sum_skips_nulls(self, loaded):
        assert loaded.execute("SELECT SUM(v) FROM s").scalar() == 15

    def test_sum_of_all_nulls_is_null(self, con):
        con.execute("CREATE TABLE e (v INTEGER)")
        con.execute("INSERT INTO e VALUES (NULL), (NULL)")
        assert con.execute("SELECT SUM(v) FROM e").scalar() is None

    def test_sum_of_empty_is_null_count_zero(self, con):
        con.execute("CREATE TABLE e (v INTEGER)")
        row = con.execute("SELECT SUM(v), COUNT(v), COUNT(*) FROM e").rows[0]
        assert row == (None, 0, 0)

    def test_scalar_aggregate_always_one_row(self, con):
        con.execute("CREATE TABLE e (v INTEGER)")
        assert len(con.execute("SELECT MAX(v) FROM e").rows) == 1

    def test_avg(self, loaded):
        assert loaded.execute("SELECT AVG(v) FROM s WHERE g = 'a'").scalar() == 1.5

    def test_min_max(self, loaded):
        assert loaded.execute("SELECT MIN(v), MAX(v) FROM s").rows == [(1, 7)]

    def test_min_max_strings(self, loaded):
        assert loaded.execute("SELECT MIN(g), MAX(g) FROM s").rows == [("a", "b")]

    def test_count_distinct(self, loaded):
        assert loaded.execute("SELECT COUNT(DISTINCT sub) FROM s").scalar() == 2

    def test_sum_distinct(self, con):
        con.execute("CREATE TABLE d (v INTEGER)")
        con.execute("INSERT INTO d VALUES (1), (1), (2)")
        assert con.execute("SELECT SUM(DISTINCT v) FROM d").scalar() == 3

    def test_duplicate_aggregates_deduplicated(self, loaded):
        # The same SUM(v) twice must compute once but project twice.
        rows = loaded.execute("SELECT SUM(v), SUM(v) FROM s").rows
        assert rows == [(15, 15)]


class TestHaving:
    def test_having_on_aggregate(self, loaded):
        rows = loaded.execute(
            "SELECT g, SUM(v) FROM s GROUP BY g HAVING SUM(v) > 4 ORDER BY g"
        ).rows
        assert rows == [("b", 5), (None, 7)]

    def test_having_on_group_key(self, loaded):
        rows = loaded.execute(
            "SELECT g, COUNT(*) FROM s GROUP BY g HAVING g = 'a'"
        ).rows
        assert rows == [("a", 3)]

    def test_having_with_fresh_aggregate(self, loaded):
        # HAVING may use an aggregate that is not in the select list.
        rows = loaded.execute(
            "SELECT g FROM s GROUP BY g HAVING COUNT(*) >= 3"
        ).rows
        assert rows == [("a",)]
