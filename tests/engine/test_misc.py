"""Engine odds and ends: results, EXPLAIN, attach, dates, index joins."""

import datetime

import pytest

from repro import Connection, Result
from repro.errors import CatalogError, ExecutionError


class TestResultApi:
    def test_iteration_and_len(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (1), (2)")
        result = con.execute("SELECT a FROM t ORDER BY a")
        assert len(result) == 2
        assert list(result) == [(1,), (2,)]

    def test_fetch_helpers(self, con):
        result = con.execute("SELECT 1, 2")
        assert result.fetchone() == (1, 2)
        assert result.fetchall() == [(1, 2)]
        assert result.scalar() == 1

    def test_empty_result(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        result = con.execute("SELECT a FROM t")
        assert result.fetchone() is None
        assert result.scalar() is None

    def test_to_dicts(self, con):
        result = con.execute("SELECT 1 AS x, 'a' AS y")
        assert result.to_dicts() == [{"x": 1, "y": "a"}]

    def test_sorted_handles_nulls_and_mixed(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        con.execute("INSERT INTO t VALUES (2), (NULL), (1)")
        rows = con.execute("SELECT a FROM t").sorted()
        assert rows[-1] == (None,)

    def test_batch_returns_last_result(self, con):
        result = con.execute("SELECT 1; SELECT 2")
        assert result.scalar() == 2


class TestExplainStatement:
    def test_explain_returns_plan_rows(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        result = con.execute("EXPLAIN SELECT a FROM t WHERE a > 1")
        assert result.statement_type == "EXPLAIN"
        text = "\n".join(row[0] for row in result.rows)
        assert "PROJECT" in text and "FILTER" in text and "GET t" in text

    def test_explain_shows_optimized_plan(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        result = con.execute("EXPLAIN SELECT a FROM t WHERE TRUE")
        text = "\n".join(row[0] for row in result.rows)
        assert "FILTER" not in text  # folded away


class TestAttach:
    def test_cross_catalog_query(self):
        main = Connection()
        other = Connection()
        other.execute("CREATE TABLE remote (x INTEGER)")
        other.execute("INSERT INTO remote VALUES (7)")
        main.attach("db2", other)
        assert main.execute("SELECT x FROM db2.remote").rows == [(7,)]

    def test_join_local_with_attached(self):
        main = Connection()
        other = Connection()
        main.execute("CREATE TABLE l (k INTEGER)")
        main.execute("INSERT INTO l VALUES (1), (2)")
        other.execute("CREATE TABLE r (k INTEGER, v VARCHAR)")
        other.execute("INSERT INTO r VALUES (1, 'one')")
        main.attach("o", other)
        rows = main.execute(
            "SELECT l.k, r.v FROM l JOIN o.r AS r ON l.k = r.k"
        ).rows
        assert rows == [(1, "one")]

    def test_detach(self):
        main = Connection()
        other = Connection()
        main.attach("db2", other)
        main.detach("db2")
        with pytest.raises(CatalogError):
            main.execute("SELECT 1 FROM db2.t")

    def test_duplicate_attach_rejected(self):
        main = Connection()
        main.attach("db2", Connection())
        with pytest.raises(CatalogError):
            main.attach("db2", Connection())

    def test_attach_via_sql_requires_extension(self, con):
        from repro.errors import UnsupportedError

        with pytest.raises(UnsupportedError):
            con.execute("ATTACH 'somewhere' AS db2")


class TestDates:
    def test_date_column_roundtrip(self, con):
        con.execute("CREATE TABLE d (day DATE, v INTEGER)")
        con.execute("INSERT INTO d VALUES ('2024-06-09', 1), ('2024-06-10', 2)")
        rows = con.execute("SELECT day FROM d ORDER BY day").rows
        assert rows[0][0] == datetime.date(2024, 6, 9)

    def test_date_comparison_with_string(self, con):
        con.execute("CREATE TABLE d (day DATE)")
        con.execute("INSERT INTO d VALUES ('2024-01-01'), ('2024-12-31')")
        count = con.execute(
            "SELECT COUNT(*) FROM d WHERE day > '2024-06-01'"
        ).scalar()
        assert count == 1

    def test_date_group_key(self, con):
        con.execute("CREATE TABLE d (day DATE, v INTEGER)")
        con.execute(
            "INSERT INTO d VALUES ('2024-01-01', 1), ('2024-01-01', 2)"
        )
        rows = con.execute("SELECT day, SUM(v) FROM d GROUP BY day").rows
        assert rows == [(datetime.date(2024, 1, 1), 3)]


class TestIndexNestedLoopJoin:
    def test_index_join_used_and_correct(self, con):
        con.execute("CREATE TABLE big (k VARCHAR PRIMARY KEY, v INTEGER)")
        for i in range(500):
            con.execute(f"INSERT INTO big VALUES ('k{i}', {i})")
        con.execute("CREATE TABLE probe (k VARCHAR)")
        con.execute("INSERT INTO probe VALUES ('k3'), ('k77'), ('missing')")
        rows = con.execute(
            "SELECT probe.k, big.v FROM probe LEFT JOIN big ON probe.k = big.k "
            "ORDER BY 1"
        ).rows
        assert rows == [("k3", 3), ("k77", 77), ("missing", None)]

    def test_index_join_with_residual_condition(self, con):
        con.execute("CREATE TABLE big (k VARCHAR PRIMARY KEY, v INTEGER)")
        con.execute("INSERT INTO big VALUES ('a', 1), ('b', 2)")
        con.execute("CREATE TABLE probe (k VARCHAR)")
        con.execute("INSERT INTO probe VALUES ('a'), ('b')")
        rows = con.execute(
            "SELECT probe.k FROM probe JOIN big ON probe.k = big.k AND big.v > 1"
        ).rows
        assert rows == [("b",)]

    def test_composite_key_index_join(self, con):
        con.execute(
            "CREATE TABLE big (a VARCHAR, b INTEGER, v INTEGER, PRIMARY KEY (a, b))"
        )
        con.execute("INSERT INTO big VALUES ('x', 1, 10), ('x', 2, 20)")
        con.execute("CREATE TABLE probe (a VARCHAR, b INTEGER)")
        con.execute("INSERT INTO probe VALUES ('x', 2)")
        # Reversed condition order still maps onto the composite index.
        rows = con.execute(
            "SELECT big.v FROM probe JOIN big "
            "ON big.b = probe.b AND probe.a = big.a"
        ).rows
        assert rows == [(20,)]

    def test_null_probe_keys_never_match(self, con):
        con.execute("CREATE TABLE big (k VARCHAR PRIMARY KEY, v INTEGER)")
        con.execute("INSERT INTO big VALUES ('a', 1)")
        con.execute("CREATE TABLE probe (k VARCHAR)")
        con.execute("INSERT INTO probe VALUES (NULL)")
        rows = con.execute(
            "SELECT probe.k, big.v FROM probe LEFT JOIN big ON probe.k = big.k"
        ).rows
        assert rows == [(None, None)]


class TestPragmaChunkedIndexBuild:
    def test_pragma_switches_build_path(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        for i in range(100):
            con.execute(f"INSERT INTO t VALUES ({i % 17})")
        con.execute("PRAGMA ivm_chunked_index_build = TRUE")
        con.execute("CREATE INDEX idx ON t (a)")
        assert len(con.table("t").index("idx")) == 100
