"""Trigger manager tests: the delta-capture substrate."""

import pytest

from repro import Connection


@pytest.fixture
def log_trigger(con: Connection):
    con.execute("CREATE TABLE t (a VARCHAR, b INTEGER)")
    events = []

    def record(connection, event, table, rows):
        events.append((event, table, rows))

    for event in ("INSERT", "DELETE", "UPDATE"):
        con.triggers.register("logger", "t", event, record)
    return events


class TestFiring:
    def test_insert_fires_with_rows(self, con, log_trigger):
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        assert log_trigger == [("INSERT", "t", [("a", 1), ("b", 2)])]

    def test_delete_fires_with_deleted_rows(self, con, log_trigger):
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        log_trigger.clear()
        con.execute("DELETE FROM t WHERE b = 1")
        assert log_trigger == [("DELETE", "t", [("a", 1)])]

    def test_update_fires_with_pairs(self, con, log_trigger):
        con.execute("INSERT INTO t VALUES ('a', 1)")
        log_trigger.clear()
        con.execute("UPDATE t SET b = 10")
        assert log_trigger == [("UPDATE", "t", [(("a", 1), ("a", 10))])]

    def test_no_fire_on_empty_change(self, con, log_trigger):
        con.execute("DELETE FROM t WHERE b = 999")
        con.execute("UPDATE t SET b = 1 WHERE a = 'missing'")
        assert log_trigger == []

    def test_no_fire_on_other_table(self, con, log_trigger):
        con.execute("CREATE TABLE u (x INTEGER)")
        con.execute("INSERT INTO u VALUES (1)")
        assert log_trigger == []


class TestRegistry:
    def test_unregister(self, con, log_trigger):
        con.triggers.unregister("logger")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert log_trigger == []

    def test_triggers_on_lists_names(self, con, log_trigger):
        assert con.triggers.triggers_on("t") == ["logger"] * 3
        assert con.triggers.triggers_on("unknown") == []

    def test_multiple_triggers_fire_in_order(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        calls = []
        con.triggers.register("first", "t", "INSERT", lambda *a: calls.append(1))
        con.triggers.register("second", "t", "INSERT", lambda *a: calls.append(2))
        con.execute("INSERT INTO t VALUES (1)")
        assert calls == [1, 2]

    def test_unknown_event_rejected(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(ValueError):
            con.triggers.register("x", "t", "TRUNCATE", lambda *a: None)


class TestRecursionGuard:
    def test_trigger_writing_same_table_does_not_loop(self, con):
        con.execute("CREATE TABLE t (a INTEGER)")
        fired = []

        def reinsert(connection, event, table, rows):
            fired.append(rows)
            # Would recurse forever without the guard:
            connection.execute("INSERT INTO t VALUES (99)")

        con.triggers.register("loop", "t", "INSERT", reinsert)
        con.execute("INSERT INTO t VALUES (1)")
        assert len(fired) == 1
        assert len(con.table("t")) == 2

    def test_trigger_cascades_to_other_table(self, con):
        con.execute("CREATE TABLE src (a INTEGER)")
        con.execute("CREATE TABLE audit (a INTEGER)")

        def mirror(connection, event, table, rows):
            for row in rows:
                connection.execute("INSERT INTO audit VALUES (?)", list(row))

        con.triggers.register("mirror", "src", "INSERT", mirror)
        con.execute("INSERT INTO src VALUES (1), (2)")
        assert con.execute("SELECT COUNT(*) FROM audit").scalar() == 2
