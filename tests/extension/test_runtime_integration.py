"""End-to-end tests of the ingest queue wired into the extension: DML
capture enqueues instead of writing ΔT synchronously, refresh/SELECT
drain first, the synchronous pump honors the batch-size/deadline
triggers, shed load self-heals through recompute, the queue counters
surface through RefreshStats, and the background refresher daemon
converges without explicit refreshes."""

from __future__ import annotations

import time

import pytest

import shutil

from repro import CompilerFlags, Connection, PropagationMode, load_ivm
from repro.errors import BackpressureError, ReproError
from tests.conftest import assert_view_matches

VIEW = (
    "CREATE MATERIALIZED VIEW q AS "
    "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
)
RECOMPUTE = "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"


def _setup(ivm_con, **flags):
    flags.setdefault("ingest_queue", True)
    con, ext = ivm_con(**flags)
    con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
    con.execute(VIEW)
    return con, ext


class TestQueueCapture:
    def test_dml_parks_in_queue_until_refresh(self, ivm_con):
        con, ext = _setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        assert ext.queue is not None
        assert ext.queue.depth() == 2
        # ΔT is still empty — the capture deferred the write.
        delta = ext.flags.delta_table("t")
        assert con.execute(f"SELECT COUNT(*) FROM {delta}").rows[0][0] == 0
        assert ext.view_state("q").pending_changes == 0
        ext.refresh("q")
        assert ext.queue.depth() == 0
        assert_view_matches(con, RECOMPUTE, "q")

    def test_select_on_view_drains_the_queue(self, ivm_con):
        con, ext = _setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 2)")
        assert ext.queue.depth() == 3
        rows = con.execute("SELECT g, s, n FROM q ORDER BY g").rows
        assert rows == [("a", 4, 2), ("b", 2, 1)]
        assert ext.queue.depth() == 0

    def test_deletes_count_as_retractions(self, ivm_con):
        con, ext = _setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 3)")
        ext.refresh("q")
        con.execute("DELETE FROM t WHERE v = 1")
        (batch,) = ext.queue.drain()
        assert batch.retractions == 1
        assert [row[-1] for row in batch.rows] == [False]
        # Re-land what we drained by hand so the view still converges.
        ext.queue.enqueue(batch.table, batch.rows, batch.retractions)
        ext.refresh("q")
        assert_view_matches(con, RECOMPUTE, "q")
        assert ext.view_state("q").stats.snapshot()["queue"] is not None

    def test_refresh_all_drains_first(self, ivm_con):
        con, ext = _setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert ext.queue.depth() == 1
        ext.refresh_all()
        assert ext.queue.depth() == 0
        assert_view_matches(con, RECOMPUTE, "q")


class TestSynchronousPump:
    def test_batch_mode_drains_and_refreshes_at_batch_size(self, ivm_con):
        con, ext = _setup(
            ivm_con, mode=PropagationMode.BATCH, batch_size=3
        )
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("INSERT INTO t VALUES ('b', 2)")
        assert ext.queue.depth() == 2  # below the trigger: still parked
        assert ext.view_state("q").refresh_count == 0
        con.execute("INSERT INTO t VALUES ('a', 3)")
        # Third row hit batch_size: the pump drained and the BATCH
        # policy refreshed off the drained pending counter.
        assert ext.queue.depth() == 0
        assert ext.view_state("q").refresh_count == 1
        assert_view_matches(con, RECOMPUTE, "q")

    def test_deadline_trigger_drains_old_batches(self, ivm_con):
        con, ext = _setup(ivm_con, queue_deadline=0.01)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert ext.queue.depth() == 1
        time.sleep(0.03)
        # Any later watched-table DML runs the pump; the parked batch is
        # past its deadline, so both land in ΔT.
        con.execute("INSERT INTO t VALUES ('b', 2)")
        assert ext.queue.depth() in (0, 1)  # the new row may re-park
        assert ext.view_state("q").pending_changes >= 1
        ext.refresh("q")
        assert_view_matches(con, RECOMPUTE, "q")

    def test_eager_mode_with_queue_stays_fresh(self, ivm_con):
        con, ext = _setup(ivm_con, mode=PropagationMode.EAGER)
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        con.execute("DELETE FROM t WHERE g = 'a'")
        # EAGER refresh drains at the top of every refresh() call.
        assert ext.queue.depth() == 0
        assert_view_matches(con, RECOMPUTE, "q")


class TestShedSelfHeal:
    def test_shed_marks_views_and_select_recomputes(self, ivm_con):
        con, ext = _setup(
            ivm_con, queue_capacity=4, queue_policy="shed"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 2)")
        with pytest.raises(BackpressureError):
            con.execute(
                "INSERT INTO t VALUES ('b', 1), ('b', 2), ('b', 3)"
            )
        state = ext.view_state("q")
        assert state.needs_recompute is True
        events = state.stats.events_of("shed")
        assert events and events[-1]["table"] == "t"
        # The base rows landed even though the capture shed; the lazy
        # read repairs through a full recompute.
        rows = con.execute("SELECT g, s, n FROM q ORDER BY g").rows
        assert rows == [("a", 3, 2), ("b", 6, 3)]
        assert state.needs_recompute is False
        assert state.stats.events_of("recompute")
        assert ext.queue.counters["shed_batches"] == 1

    def test_coalesce_absorbs_churn_without_shedding(self, ivm_con):
        # high_watermark=1.0 keeps the pump from draining the parked
        # inserts before the deletes arrive to cancel them; capacity 8
        # makes the 6+6-row joint batch overflow into the coalesce path.
        con, ext = _setup(
            ivm_con,
            queue_capacity=8,
            queue_policy="coalesce",
            queue_high_watermark=1.0,
            queue_low_watermark=0.5,
        )
        con.execute(
            "INSERT INTO t VALUES ('a', 1), ('a', 2), ('a', 3), "
            "('a', 4), ('a', 5), ('a', 6)"
        )
        # Deleting them all cancels in-queue: no overflow, no shed.
        con.execute("DELETE FROM t")
        assert ext.queue.depth() == 0
        assert ext.queue.counters["coalesced_rows"] == 12
        assert ext.view_state("q").needs_recompute is False
        assert con.execute("SELECT COUNT(*) FROM q").rows[0][0] == 0


    def test_block_policy_inline_drains_on_overflow(self, ivm_con):
        con, ext = _setup(
            ivm_con,
            queue_capacity=4,
            queue_policy="block",
            queue_high_watermark=1.0,
            queue_low_watermark=0.5,
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('a', 3)")
        assert ext.queue.depth() == 3
        # The next 3-row batch overflows; with no background drainer the
        # writer pays for the drain inline — a typed error is never
        # raised on the block path.
        con.execute("INSERT INTO t VALUES ('b', 1), ('b', 2), ('b', 3)")
        assert ext.queue.counters["inline_drains"] >= 1
        assert ext.queue.counters["shed_batches"] == 0
        assert ext.view_state("q").needs_recompute is False
        # The drained rows reached ΔT; the parked ones follow on refresh.
        assert ext.view_state("q").pending_changes == 3
        ext.refresh("q")
        assert_view_matches(con, RECOMPUTE, "q")

    def test_shed_error_is_typed(self, ivm_con):
        con, ext = _setup(ivm_con, queue_capacity=2, queue_policy="shed")
        with pytest.raises(BackpressureError) as exc_info:
            con.execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('a', 3)")
        # The typed hierarchy, not a bare RuntimeError: callers can
        # catch engine errors without blanket except clauses.
        assert isinstance(exc_info.value, ReproError)
        assert not type(exc_info.value) is RuntimeError


class TestRecoveryUnderLoad:
    """``Connection.recover`` replay while the ingest queue still holds
    undrained batches: queued deltas are not yet durable (WAL lands at
    drain time), so a crash loses them — but the recovered engine must
    be internally consistent, and a graceful shutdown drains first so
    nothing is lost."""

    def _engine(self, directory):
        con = Connection()
        ext = load_ivm(
            con,
            CompilerFlags(
                mode=PropagationMode.LAZY,
                durability=True,
                ingest_queue=True,
                queue_capacity=64,
                queue_high_watermark=1.0,
                queue_low_watermark=0.5,
            ),
            durability_dir=directory,
        )
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(VIEW)
        return con, ext

    def test_crash_with_undrained_queue_recovers_consistently(self, tmp_path):
        directory = tmp_path / "dur"
        con, ext = self._engine(directory)
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3)")
        ext.refresh("q")  # drains: these three rows are WAL-durable
        con.execute("INSERT INTO t VALUES ('c', 4), ('c', 5)")
        assert ext.queue.depth() == 2  # parked, not yet durable
        # Simulated crash: snapshot the directory while batches are
        # still queued (the live engine keeps running).
        crash_dir = tmp_path / "crash"
        shutil.copytree(directory, crash_dir)
        recovered = Connection.recover(crash_dir)
        # The parked rows never reached the WAL, so recovery cannot see
        # them — but what it does see is exactly the drained prefix,
        # and the recovered view equals the recompute over it.
        assert recovered.execute("SELECT COUNT(*) FROM t").rows[0][0] == 3
        assert_view_matches(recovered, RECOMPUTE, "q")
        # The recovered engine ingests and refreshes normally.
        recovered.execute("INSERT INTO t VALUES ('d', 6)")
        assert_view_matches(recovered, RECOMPUTE, "q")

    def test_graceful_shutdown_drains_before_recovery(self, tmp_path):
        directory = tmp_path / "dur"
        con, ext = self._engine(directory)
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        ext.refresh("q")
        con.execute("INSERT INTO t VALUES ('c', 3), ('c', 4)")
        assert ext.queue.depth() == 2
        ext.shutdown()  # drains the residue into the WAL, then closes
        recovered = Connection.recover(directory)
        assert recovered.execute("SELECT COUNT(*) FROM t").rows[0][0] == 4
        assert_view_matches(recovered, RECOMPUTE, "q")


class TestStatsAndHealth:
    def test_queue_counters_surface_in_refresh_stats(self, ivm_con):
        con, ext = _setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        ext.refresh("q")
        snap = ext.refresh_stats("q")
        assert snap["queue"]["enqueued_rows"] == 1
        assert snap["queue"]["drained_rows"] == 1
        assert snap["degradation_rung"] == 0

    def test_health_reports_queue_views_and_faults(self, ivm_con):
        from repro.core.faults import FaultPlan

        con, ext = _setup(ivm_con, fault_plan=FaultPlan(seed=1))
        con.execute("INSERT INTO t VALUES ('a', 1)")
        report = ext.health()
        assert report["queue"]["depth_rows"] == 1
        (view,) = report["views"]
        assert view["view"] == "q"
        assert view["rung_name"] == "parallel"
        assert view["needs_recompute"] is False
        assert report["faults"] == []  # a plan with no specs
        assert report["durability"] is None

    def test_shutdown_drains_residue(self, ivm_con):
        con, ext = _setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert ext.queue.depth() == 1
        ext.shutdown()
        assert ext.queue.depth() == 0
        ext.shutdown()  # idempotent


class TestAsyncDaemon:
    def test_background_refresher_drains_without_explicit_refresh(
        self, ivm_con
    ):
        con, ext = _setup(
            ivm_con,
            queue_async=True,
            queue_deadline=0.01,
            queue_capacity=64,
        )
        try:
            assert ext._daemon is not None
            con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
            deadline = time.monotonic() + 5.0
            while ext.queue.depth() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert ext.queue.depth() == 0
        finally:
            ext.shutdown()
        # The drained rows reached ΔT as pending changes (or were
        # already refreshed); either way the read converges.
        assert_view_matches(con, RECOMPUTE, "q")

    def test_high_watermark_wakes_the_daemon(self, ivm_con):
        con, ext = _setup(
            ivm_con,
            queue_async=True,
            queue_capacity=10,
            queue_high_watermark=0.3,
            queue_low_watermark=0.1,
        )
        try:
            con.execute(
                "INSERT INTO t VALUES ('a', 1), ('a', 2), ('a', 3), ('a', 4)"
            )
            deadline = time.monotonic() + 5.0
            while ext.queue.depth() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert ext.queue.depth() == 0
        finally:
            ext.shutdown()
        assert_view_matches(con, RECOMPUTE, "q")
