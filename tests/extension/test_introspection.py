"""Extension introspection and auxiliary surfaces."""

import pytest

from repro.core.flags import PropagationMode


class TestStatus:
    def test_status_report(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('b', 2)")
        (entry,) = ext.status()
        assert entry["view"] == "q"
        assert entry["class"] == "aggregation"
        assert entry["mode"] == "lazy"
        assert entry["pending_changes"] == 1
        assert entry["rows"] == 1  # only the populate row so far
        assert entry["base_tables"] == ["t"]

    def test_status_after_refresh(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 1)")
        ext.refresh("q")
        (entry,) = ext.status()
        assert entry["pending_changes"] == 0
        assert entry["refresh_count"] == 1
        assert entry["rows"] == 1

    def test_multiple_views_sorted(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW zz AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("CREATE MATERIALIZED VIEW aa AS SELECT g, COUNT(*) AS c FROM t GROUP BY g")
        assert [e["view"] for e in ext.status()] == ["aa", "zz"]


class TestCaptureTriggerDDL:
    def test_postgres_trigger_script(self):
        from repro import OLTPSystem

        oltp = OLTPSystem()
        oltp.execute("CREATE TABLE sales (region VARCHAR, amount INTEGER)")
        ddl = oltp.capture_trigger_ddl("sales")
        assert "CREATE OR REPLACE FUNCTION delta_sales_capture_fn()" in ddl
        assert "AFTER INSERT OR UPDATE OR DELETE ON sales" in ddl
        assert "VALUES (NEW.region, NEW.amount, TRUE)" in ddl
        assert "VALUES (OLD.region, OLD.amount, FALSE)" in ddl
        assert "LANGUAGE plpgsql" in ddl

    def test_trigger_ddl_respects_prefixes(self):
        from repro import OLTPSystem

        oltp = OLTPSystem(delta_prefix="chg_", multiplicity_column="_sign")
        oltp.execute("CREATE TABLE t (a INTEGER)")
        ddl = oltp.capture_trigger_ddl("t")
        assert "chg_t" in ddl and "_sign" in ddl


class TestRebuildStrategiesWithAvg:
    @pytest.mark.parametrize("strategy_name", ["union_regroup", "full_outer_join"])
    def test_avg_under_rebuild_strategies(self, ivm_con, strategy_name):
        from repro import MaterializationStrategy

        con, ext = ivm_con(strategy=MaterializationStrategy(strategy_name))
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 2), ('a', 4), ('b', 10)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, AVG(v) AS a, COUNT(*) AS c "
            "FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 6), ('c', 1)")
        con.execute("DELETE FROM t WHERE g = 'b'")
        got = con.execute("SELECT g, a, c FROM q").sorted()
        want = con.execute(
            "SELECT g, AVG(v), COUNT(*) FROM t GROUP BY g"
        ).sorted()
        assert got == want
