"""Failure-path regression tests: a refresh that dies mid-pipeline must
release its snapshot pin, leave the pre-refresh rows visible, and heal
through a full recompute on the next refresh — never serve half-applied
state.  Covers the flat per-step pipeline and the sharded fold (where
the failure happens on a worker thread)."""

import pytest

from tests.conftest import assert_view_matches


class InjectedStepFailure(RuntimeError):
    pass


def _patch_first_claiming_step(state):
    """Make the view's first label-claiming native step raise."""
    step = next(s for s in state.compiled.native_steps if s.replaces)

    def boom(connection):
        raise InjectedStepFailure("injected native-step failure")

    step.run = boom
    return step


class TestFailedRefresh:
    def _setup(self, ivm_con, **flags):
        con, ext = ivm_con(**flags)
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3)")
        ext.refresh("q")
        return con, ext

    def test_snapshot_pin_released_and_rows_rolled_back(self, ivm_con):
        con, ext = self._setup(ivm_con)
        table = con.catalog.table("q")
        before = sorted(table.scan())
        con.execute("INSERT INTO t VALUES ('a', 10), ('c', 5)")
        state = ext.view_state("q")
        step = _patch_first_claiming_step(state)
        with pytest.raises(InjectedStepFailure):
            ext.refresh("q")
        # The pin is gone (no leaked snapshot epoch) and the stored rows
        # are the pre-refresh epoch, not a half-applied refresh.  (Read
        # via scan: a SELECT would trigger the lazy self-heal refresh.)
        assert table._snapshot_pinned is False
        assert table._snapshot_rows is None
        assert sorted(table.scan()) == before
        assert state.needs_recompute is True
        status = {entry["view"]: entry for entry in ext.status()}
        assert status["q"]["needs_recompute"] is True

    def test_next_refresh_recomputes_and_clears_flag(self, ivm_con):
        con, ext = self._setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('a', 10), ('c', 5)")
        state = ext.view_state("q")
        step = _patch_first_claiming_step(state)
        with pytest.raises(InjectedStepFailure):
            ext.refresh("q")
        del step.run  # restore the real step
        ext.refresh("q")
        assert state.needs_recompute is False
        assert_view_matches(
            con, "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g", "q"
        )
        # Incremental maintenance keeps working after the recompute.
        con.execute("DELETE FROM t WHERE v = 10")
        con.execute("INSERT INTO t VALUES ('b', 7)")
        ext.refresh("q")
        assert_view_matches(
            con, "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g", "q"
        )

    def test_refresh_all_heals_flagged_views(self, ivm_con):
        con, ext = self._setup(ivm_con)
        con.execute("INSERT INTO t VALUES ('z', 9)")
        state = ext.view_state("q")
        step = _patch_first_claiming_step(state)
        with pytest.raises(InjectedStepFailure):
            ext.refresh("q")
        del step.run
        # needs_recompute alone (even with no new pending changes) must
        # make refresh_all pick the view up.
        ext.refresh_all()
        assert state.needs_recompute is False
        assert_view_matches(
            con, "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g", "q"
        )


class TestShardWorkerFailure:
    QUERY = (
        "SELECT c.region, SUM(o.amount) AS s, MAX(o.amount) AS hi, "
        "COUNT(*) AS n FROM orders o JOIN customers c ON o.cust = c.id "
        "GROUP BY c.region"
    )

    def _setup(self, ivm_con):
        con, ext = ivm_con(shard_count=4)
        con.execute(
            "CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, "
            "amount INTEGER)"
        )
        con.execute(
            "CREATE TABLE customers (id INTEGER PRIMARY KEY, region VARCHAR)"
        )
        con.execute(f"CREATE MATERIALIZED VIEW q AS {self.QUERY}")
        con.execute(
            "INSERT INTO customers VALUES (1,'eu'), (2,'us'), (3,'apac'), "
            "(4,'latam')"
        )
        con.execute(
            "INSERT INTO orders VALUES (1,1,10), (2,2,20), (3,3,30), "
            "(4,4,40), (5,1,50), (6,2,60)"
        )
        ext.refresh("q")
        state = ext.view_state("q")
        sharded = next(
            s for s in state.compiled.native_steps if s.name == "sharded"
        )
        assert sharded.shard_count == 4 and sharded.parallel
        return con, ext, state, sharded

    def test_worker_exception_propagates_and_flags_recompute(self, ivm_con):
        con, ext, state, sharded = self._setup(ivm_con)
        table = con.catalog.table("q")
        before = sorted(table.scan())
        con.execute("INSERT INTO orders VALUES (7,1,70), (8,3,80), (9,4,90)")
        con.execute("DELETE FROM orders WHERE id = 2")

        real_fold = sharded._shard_fold

        def failing_fold(connection, shard, *args):
            if shard == 1:
                raise InjectedStepFailure(f"worker for shard {shard} died")
            return real_fold(connection, shard, *args)

        sharded._shard_fold = failing_fold
        with pytest.raises(InjectedStepFailure):
            ext.refresh("q")
        # First worker exception surfaced (not swallowed by the pool),
        # the view rolled back to its pre-refresh epoch, and the view is
        # flagged: the surviving shards integrated their deltas, shard 1
        # did not, so the partitions are mutually inconsistent.
        assert sorted(table.scan()) == before
        assert table._snapshot_pinned is False
        assert state.needs_recompute is True

    def test_recompute_reseeds_all_shards(self, ivm_con):
        con, ext, state, sharded = self._setup(ivm_con)
        con.execute("INSERT INTO orders VALUES (7,1,70), (8,3,80), (9,4,90)")

        real_fold = sharded._shard_fold

        def failing_fold(connection, shard, *args):
            if shard == 1:
                raise InjectedStepFailure(f"worker for shard {shard} died")
            return real_fold(connection, shard, *args)

        sharded._shard_fold = failing_fold
        with pytest.raises(InjectedStepFailure):
            ext.refresh("q")
        del sharded._shard_fold
        ext.refresh("q")
        assert state.needs_recompute is False
        assert_view_matches(con, self.QUERY, "q")
        # The reseeded shard states stay consistent through further
        # incremental rounds, including MAX retractions.
        con.execute("DELETE FROM orders WHERE amount >= 80")
        con.execute("INSERT INTO orders VALUES (10,2,-5), (11,4,100)")
        ext.refresh("q")
        assert_view_matches(con, self.QUERY, "q")
