"""Propagation modes: eager, lazy, batched (paper §3 + the §1 trade-off)."""

import pytest

from repro.core.flags import PropagationMode


def pending_delta(con) -> int:
    return con.execute("SELECT COUNT(*) FROM delta_t").scalar()


@pytest.fixture
def setup(ivm_con):
    def make(**flags):
        con, ext = ivm_con(**flags)
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        return con, ext

    return make


class TestEager:
    def test_view_current_after_every_dml(self, setup):
        con, ext = setup(mode=PropagationMode.EAGER)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        # Read the mv table directly (no lazy hook involvement).
        assert list(con.table("q").scan()) == [("a", 1)]
        assert pending_delta(con) == 0
        con.execute("INSERT INTO t VALUES ('a', 2)")
        assert list(con.table("q").scan()) == [("a", 3)]

    def test_refresh_count_tracks_statements(self, setup):
        con, ext = setup(mode=PropagationMode.EAGER)
        for i in range(4):
            con.execute(f"INSERT INTO t VALUES ('a', {i})")
        assert ext.view_state("q").refresh_count == 4


class TestLazy:
    def test_deltas_accumulate_until_query(self, setup):
        con, ext = setup(mode=PropagationMode.LAZY)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("INSERT INTO t VALUES ('a', 2)")
        assert pending_delta(con) == 2
        assert list(con.table("q").scan()) == []  # stale storage
        assert con.execute("SELECT s FROM q").scalar() == 3  # refresh on query
        assert pending_delta(con) == 0

    def test_query_not_touching_view_does_not_refresh(self, setup):
        con, ext = setup(mode=PropagationMode.LAZY)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("SELECT COUNT(*) FROM t")
        assert pending_delta(con) == 1

    def test_view_inside_subquery_triggers_refresh(self, setup):
        con, ext = setup(mode=PropagationMode.LAZY)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        value = con.execute(
            "SELECT total FROM (SELECT SUM(s) AS total FROM q) AS sub"
        ).scalar()
        assert value == 1

    def test_view_inside_cte_triggers_refresh(self, setup):
        con, ext = setup(mode=PropagationMode.LAZY)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        value = con.execute(
            "WITH c AS (SELECT s FROM q) SELECT SUM(s) FROM c"
        ).scalar()
        assert value == 1

    def test_explicit_refresh(self, setup):
        con, ext = setup(mode=PropagationMode.LAZY)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        ext.refresh("q")
        assert list(con.table("q").scan()) == [("a", 1)]

    def test_refresh_all(self, setup):
        con, ext = setup(mode=PropagationMode.LAZY)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        ext.refresh_all()
        assert pending_delta(con) == 0


class TestBatch:
    def test_refresh_fires_at_batch_size(self, setup):
        con, ext = setup(mode=PropagationMode.BATCH, batch_size=3)
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert pending_delta(con) == 2  # below threshold
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert pending_delta(con) == 0  # threshold reached -> refreshed
        assert list(con.table("q").scan()) == [("a", 3)]

    def test_multi_row_statement_counts_rows(self, setup):
        con, ext = setup(mode=PropagationMode.BATCH, batch_size=3)
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 1), ('a', 1)")
        assert pending_delta(con) == 0

    def test_query_still_refreshes_below_threshold(self, setup):
        # Batching trades recency for amortization, but an explicit query
        # must still see fresh data (lazy refresh applies).
        con, ext = setup(mode=PropagationMode.BATCH, batch_size=100)
        con.execute("INSERT INTO t VALUES ('a', 7)")
        assert con.execute("SELECT s FROM q").scalar() == 7
