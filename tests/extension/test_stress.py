"""Longer mixed-workload scenarios through the full extension stack."""

import random

import pytest

from repro.core.flags import PropagationMode


class TestMixedWorkload:
    def test_200_operation_session_stays_consistent(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s, COUNT(*) AS c "
            "FROM t GROUP BY g"
        )
        rng = random.Random(99)
        for step in range(200):
            op = rng.random()
            group = f"g{rng.randrange(8)}"
            if op < 0.6:
                con.execute("INSERT INTO t VALUES (?, ?)", [group, rng.randint(1, 50)])
            elif op < 0.8:
                con.execute("DELETE FROM t WHERE g = ? AND v < ?", [group, rng.randint(1, 25)])
            else:
                con.execute("UPDATE t SET v = v + 1 WHERE g = ?", [group])
            if step % 25 == 0:
                got = con.execute("SELECT g, s, c FROM q").sorted()
                want = con.execute(
                    "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g"
                ).sorted()
                assert got == want, f"diverged at step {step}"
        got = con.execute("SELECT g, s, c FROM q").sorted()
        want = con.execute("SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g").sorted()
        assert got == want

    def test_insert_select_captured_through_triggers(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE TABLE staging (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute("INSERT INTO staging VALUES ('a', 1), ('b', 2), ('a', 3)")
        con.execute("INSERT INTO t SELECT g, v FROM staging")
        got = con.execute("SELECT g, s FROM q").sorted()
        assert got == [("a", 4), ("b", 2)]

    def test_insert_with_column_list_captures_full_row(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER, note VARCHAR)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, COUNT(*) AS c FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t (v, g) VALUES (5, 'a')")  # note omitted
        assert con.execute("SELECT * FROM delta_t").rows == [("a", 5, None, True)]
        assert con.execute("SELECT c FROM q").scalar() == 1

    def test_expression_key_view_through_extension(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT UPPER(g) AS gg, SUM(v) AS s FROM t GROUP BY UPPER(g)"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('A', 2), ('b', 5)")
        got = con.execute("SELECT gg, s FROM q").sorted()
        assert got == [("A", 3), ("B", 5)]
        con.execute("DELETE FROM t WHERE g = 'A'")
        got = con.execute("SELECT gg, s FROM q").sorted()
        assert got == [("A", 1), ("B", 5)]

    def test_three_views_three_modes_one_base(self, ivm_con):
        """Views with different refresh modes coexist over one base table."""
        from repro import CompilerFlags, Connection, load_ivm

        con = Connection()
        ext = load_ivm(con, CompilerFlags(mode=PropagationMode.LAZY))
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW sums AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("CREATE MATERIALIZED VIEW counts AS SELECT g, COUNT(*) AS c FROM t GROUP BY g")
        con.execute("CREATE MATERIALIZED VIEW highs AS SELECT g, MAX(v) AS hi FROM t GROUP BY g")
        for i in range(30):
            con.execute("INSERT INTO t VALUES (?, ?)", [f"g{i % 3}", i])
        for view, columns, sql in (
            ("sums", "g, s", "SELECT g, SUM(v) FROM t GROUP BY g"),
            ("counts", "g, c", "SELECT g, COUNT(*) FROM t GROUP BY g"),
            ("highs", "g, hi", "SELECT g, MAX(v) FROM t GROUP BY g"),
        ):
            got = con.execute(f"SELECT {columns} FROM {view}").sorted()
            want = con.execute(sql).sorted()
            assert got == want, view
        # MIN/MAX views carry the hidden liveness count (visible through
        # SELECT * on the storage table — the documented deviation).
        star = con.execute("SELECT * FROM highs")
        assert star.columns[-1] == "_duckdb_ivm_count"


class TestHTAPStress:
    def test_sales_workload_update_heavy(self):
        from repro import CrossSystemPipeline, OLTPSystem
        from repro.workloads import generate_sales_workload

        workload = generate_sales_workload(num_customers=40, num_orders=600, seed=8)
        oltp = OLTPSystem()
        oltp.execute(workload.SCHEMA)
        for row in workload.customers:
            oltp.connection.table("customers").insert(row, coerce=False)
        for row in workload.orders:
            oltp.connection.table("orders").insert(row, coerce=False)
        pipe = CrossSystemPipeline(oltp=oltp)
        pipe.create_materialized_view(
            "CREATE MATERIALIZED VIEW rev AS "
            "SELECT c.region, SUM(o.amount) AS revenue FROM orders o "
            "JOIN customers c ON o.cust_id = c.cust_id GROUP BY c.region"
        )
        rng = random.Random(5)
        for round_ in range(10):
            oltp.execute(
                f"UPDATE orders SET amount = amount + 1 "
                f"WHERE oid % 7 = {round_ % 7}"
            )
            if round_ % 3 == 0:
                oltp.execute(f"DELETE FROM orders WHERE amount < {rng.randint(2, 9)}")
            got = pipe.query("SELECT * FROM rev").sorted()
            want = oltp.execute(
                "SELECT c.region, SUM(o.amount) FROM orders o "
                "JOIN customers c ON o.cust_id = c.cust_id GROUP BY c.region"
            ).sorted()
            assert got == want, f"diverged in round {round_}"
