"""OpenIVM extension tests: fall-back parser, DML interception, lifecycle."""

import pathlib

import pytest

from repro import Connection, IVMError
from repro.core.flags import PropagationMode


class TestFallbackParser:
    def test_materialized_view_via_fallback(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        assert ext.views() == ["q"]
        assert con.catalog.has_table("q")
        assert con.catalog.has_table("delta_t")
        assert con.catalog.has_table("delta_q")

    def test_core_syntax_errors_still_raise(self, ivm_con):
        con, _ = ivm_con()
        with pytest.raises(Exception):
            con.execute("CREATE MATERIALIZD VIEW broken AS SELECT 1")

    def test_refresh_statement_parses(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        result = con.execute("REFRESH MATERIALIZED VIEW q")
        assert result.statement_type == "REFRESH MATERIALIZED VIEW"

    def test_duplicate_view_rejected(self, ivm_con):
        con, _ = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        with pytest.raises(IVMError):
            con.execute(
                "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g"
            )

    def test_metadata_table_filled(self, ivm_con):
        con, _ = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        row = con.execute(
            "SELECT view_name, view_class FROM _duckdb_ivm_views"
        ).rows[0]
        assert row == ("q", "aggregation")


class TestDeltaCapture:
    def test_insert_captured_with_true_multiplicity(self, ivm_con):
        con, _ = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert con.execute("SELECT * FROM delta_t").rows == [("a", 1, True)]

    def test_delete_captured_with_false_multiplicity(self, ivm_con):
        con, _ = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("DELETE FROM t")
        assert con.execute("SELECT * FROM delta_t").rows == [("a", 1, False)]

    def test_update_captured_as_delete_plus_insert(self, ivm_con):
        con, _ = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("UPDATE t SET v = 5")
        assert con.execute("SELECT * FROM delta_t ORDER BY 3").rows == [
            ("a", 1, False),
            ("a", 5, True),
        ]

    def test_unwatched_table_not_captured(self, ivm_con):
        con, _ = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE TABLE other (x INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("INSERT INTO other VALUES (1)")
        assert con.execute("SELECT COUNT(*) FROM delta_t").scalar() == 0


class TestSharedDeltaTables:
    def test_two_views_over_one_base(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("INSERT INTO t VALUES ('a', 1), ('b', 2)")
        con.execute("CREATE MATERIALIZED VIEW sums AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("CREATE MATERIALIZED VIEW counts AS SELECT g, COUNT(*) AS c FROM t GROUP BY g")
        con.execute("INSERT INTO t VALUES ('a', 10)")
        # Querying one view must not starve the other of its delta rows.
        assert con.execute("SELECT s FROM sums WHERE g = 'a'").scalar() == 11
        assert con.execute("SELECT c FROM counts WHERE g = 'a'").scalar() == 2

    def test_refresh_consumes_shared_delta_once(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW a AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("CREATE MATERIALIZED VIEW b AS SELECT g, COUNT(*) AS c FROM t GROUP BY g")
        con.execute("INSERT INTO t VALUES ('x', 1)")
        ext.refresh("a")
        assert con.execute("SELECT COUNT(*) FROM delta_t").scalar() == 0
        # b was refreshed as part of a's closure:
        assert con.execute("SELECT c FROM b", ).scalar() == 1


class TestDropView:
    def test_drop_cleans_everything(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("DROP VIEW q")
        assert ext.views() == []
        assert not con.catalog.has_table("q")
        assert not con.catalog.has_table("delta_q")
        assert not con.catalog.has_table("delta_t")
        assert con.execute("SELECT COUNT(*) FROM _duckdb_ivm_views").scalar() == 0
        # DML on the former base table no longer captures deltas:
        con.execute("INSERT INTO t VALUES ('a', 1)")

    def test_drop_keeps_shared_delta_for_other_views(self, ivm_con):
        con, ext = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW a AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        con.execute("CREATE MATERIALIZED VIEW b AS SELECT g, COUNT(*) AS c FROM t GROUP BY g")
        con.execute("DROP VIEW a")
        assert con.catalog.has_table("delta_t")
        con.execute("INSERT INTO t VALUES ('a', 1)")
        assert con.execute("SELECT c FROM b").scalar() == 1

    def test_plain_view_drop_untouched(self, ivm_con):
        con, _ = ivm_con()
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE VIEW plain AS SELECT g FROM t")
        con.execute("DROP VIEW plain")  # must not hit the IVM path


class TestScriptStore:
    def test_script_written_to_disk(self, tmp_path):
        from repro import CompilerFlags, load_ivm

        con = Connection()
        load_ivm(con, CompilerFlags(), script_dir=tmp_path)
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute("CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        script = (tmp_path / "q.sql").read_text()
        assert "INSERT INTO delta_q" in script
        assert "INSERT OR REPLACE INTO q" in script


class TestDoubleLoad:
    def test_loading_twice_rejected(self, ivm_con):
        con, ext = ivm_con()
        with pytest.raises(IVMError):
            ext.register(con)
