"""The adaptive refresh planner end to end through the extension.

Covers: arm construction per view shape, decision records landing in
``refresh_stats``, activation wiring (liveness handoff, pending-key
hygiene, sharded serial/parallel), feedback convergence, and the
determinism of seeded decision replay.
"""

import pytest

from repro import (
    CompilerFlags,
    Connection,
    MaterializationStrategy,
    PropagationMode,
    load_ivm,
)
from repro.core.adaptive import AdaptivePlanner, build_plan_arms, planner_seed
from repro.core.costmodel import RefreshSignals


@pytest.fixture
def adaptive_con(ivm_con):
    def make(**flags):
        flags.setdefault("adaptive", True)
        con, ext = ivm_con(**flags)
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        return con, ext

    return make


def _run_rounds(con, ext, rounds=6, rows_per_round=5):
    for r in range(rounds):
        values = ", ".join(
            f"('g{(r * 7 + i) % 4}', {i - 2})" for i in range(rows_per_round)
        )
        con.execute(f"INSERT INTO t VALUES {values}")
        if r % 3 == 2:
            con.execute("DELETE FROM t WHERE v < 0")
        ext.refresh("q")


class TestArmConstruction:
    def _arms(self, ext, name="q"):
        state = ext.view_state(name)
        assert state.adaptive is not None, "planner must be wired"
        return {arm.arm_id for arm in state.adaptive.arms}

    def test_additive_view_gets_kernel_and_sql_arms(self, adaptive_con):
        con, ext = adaptive_con()
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        arms = self._arms(ext)
        # 4 step-2 forms x (native step 3 stays fixed in counter mode,
        # or x2 with stored liveness) — at minimum the four kernels.
        step2_kinds = {arm.split("|")[0] for arm in arms}
        assert step2_kinds == {
            "step2=native-upsert",
            "step2=native-regroup",
            "step2=native-outer",
            "step2=sql",
        }

    def test_minmax_view_keeps_its_upsert_kernel_fixed(self, adaptive_con):
        con, ext = adaptive_con()
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, MIN(v) AS lo FROM t GROUP BY g"
        )
        arms = self._arms(ext)
        # Extremum folds live in the upsert kernel alone: no step-2
        # alternatives may be offered, only the step-3 choice varies.
        assert {arm.split("|")[0] for arm in arms} == {"step2=native-upsert"}

    def test_sharded_join_gets_exactly_the_two_shard_arms(self, adaptive_con):
        con, ext = adaptive_con(shard_count=4)
        con.execute("CREATE TABLE r (g VARCHAR, w INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT t.g, SUM(t.v + r.w) AS s FROM t JOIN r ON t.g = r.g "
            "GROUP BY t.g"
        )
        assert self._arms(ext) == {"sharded=parallel", "sharded=serial"}

    def test_adaptive_off_means_no_planner(self, adaptive_con):
        con, ext = adaptive_con(adaptive=False)
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        assert ext.view_state("q").adaptive is None


class TestDecisionRecording:
    def test_refresh_stats_carries_plan_and_signals(self, adaptive_con):
        con, ext = adaptive_con()
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        _run_rounds(con, ext, rounds=4)
        stats = ext.refresh_stats("q")
        assert stats["last_plan"]["arm"].startswith("step2=")
        assert stats["last_signals"]["delta_rows"] >= 0
        assert len(stats["decisions"]) == 4
        for decision in stats["decisions"]:
            assert decision["wall_seconds"] > 0.0
            assert decision["predicted_cost"] > 0.0
            assert set(decision["signals"]) == {
                "delta_rows", "view_rows", "touched_groups",
                "retraction_rows", "max_shard_load", "shard_skew",
            }

    def test_history_is_trimmed_to_the_flag(self, adaptive_con):
        con, ext = adaptive_con(adaptive_history=3)
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        _run_rounds(con, ext, rounds=8)
        assert len(ext.refresh_stats("q")["decisions"]) == 3

    def test_plan_switches_counted(self, adaptive_con):
        con, ext = adaptive_con()
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        _run_rounds(con, ext, rounds=8)
        stats = ext.refresh_stats("q")
        # The initial round-robin alone visits every arm once.
        assert stats["plan_switches"] >= len(
            ext.view_state("q").adaptive.arms
        ) - 1

    def test_retraction_signal_counts_captured_deletes(self, adaptive_con):
        con, ext = adaptive_con()
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        con.execute("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3)")
        ext.refresh("q")
        con.execute("DELETE FROM t WHERE g = 'a'")
        con.execute("INSERT INTO t VALUES ('c', 4)")
        ext.refresh("q")
        signals = ext.refresh_stats("q")["last_signals"]
        assert signals["retraction_rows"] == 2
        # Consumed on refresh: the next round starts from zero.
        con.execute("INSERT INTO t VALUES ('d', 5)")
        ext.refresh("q")
        assert ext.refresh_stats("q")["last_signals"]["retraction_rows"] == 0


class TestCorrectnessUnderSwitching:
    def test_every_round_matches_recompute(self, adaptive_con):
        # epsilon=1.0: a random arm every round after the round-robin —
        # maximal switching stress on the activation wiring.
        con, ext = adaptive_con(adaptive_epsilon=1.0)
        con.execute(
            "CREATE MATERIALIZED VIEW q AS SELECT g, SUM(v) AS s, "
            "COUNT(*) AS c FROM t GROUP BY g"
        )
        for r in range(20):
            values = ", ".join(
                f"('g{(r + i) % 5}', {(i * 3 - 4) % 7 - 3})" for i in range(6)
            )
            con.execute(f"INSERT INTO t VALUES {values}")
            if r % 4 == 1:
                con.execute("DELETE FROM t WHERE v <= -2")
            ext.refresh("q")
            got = con.execute("SELECT g, s, c FROM q").sorted()
            want = con.execute(
                "SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g"
            ).sorted()
            assert got == want, f"diverged at round {r}"

    def test_sharded_rounds_match_recompute_both_modes(self, adaptive_con):
        con, ext = adaptive_con(shard_count=4, adaptive_epsilon=1.0)
        con.execute("CREATE TABLE r (g VARCHAR, w INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT t.g, SUM(t.v + r.w) AS s FROM t JOIN r ON t.g = r.g "
            "GROUP BY t.g"
        )
        con.execute(
            "INSERT INTO r VALUES ('g0', 10), ('g1', 20), ('g2', 30)"
        )
        seen = set()
        for r in range(12):
            values = ", ".join(
                f"('g{(r + i) % 4}', {i})" for i in range(5)
            )
            con.execute(f"INSERT INTO t VALUES {values}")
            ext.refresh("q")
            seen.add(ext.refresh_stats("q")["last_plan"]["parallel"])
            got = con.execute("SELECT g, s FROM q").sorted()
            want = con.execute(
                "SELECT t.g, SUM(t.v + r.w) FROM t JOIN r ON t.g = r.g "
                "GROUP BY t.g"
            ).sorted()
            assert got == want, f"diverged at round {r}"
        assert seen == {True, False}, "both shard modes must have run"


class TestPlannerUnit:
    def _planner(self, epsilon=0.0, seed=1):
        con = Connection()
        ext = load_ivm(
            con, CompilerFlags(mode=PropagationMode.LAZY, adaptive=True)
        )
        con.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
        con.execute(
            "CREATE MATERIALIZED VIEW q AS "
            "SELECT g, SUM(v) AS s FROM t GROUP BY g"
        )
        state = ext.view_state("q")
        return AdaptivePlanner(
            build_plan_arms(state.compiled.model, state.compiled.native_steps),
            all_steps=state.compiled.native_steps,
            epsilon=epsilon,
            seed=seed,
        )

    def test_initial_round_robin_visits_every_arm(self):
        planner = self._planner()
        signals = RefreshSignals(
            delta_rows=10, view_rows=100, touched_groups=10
        )
        chosen = [
            planner.choose(signals).arm.arm_id for _ in planner.arms
        ]
        assert sorted(chosen) == sorted(arm.arm_id for arm in planner.arms)

    def test_feedback_steers_exploitation(self):
        planner = self._planner(epsilon=0.0)
        signals = RefreshSignals(
            delta_rows=10, view_rows=100, touched_groups=10
        )
        slow_arm = None
        # Burn the full round-robin (every arm + the repeated model-best
        # warm sample) with feedback marking arms[0] as slow.
        for _ in range(len(planner.arms) + 1):
            decision = planner.choose(signals)
            slow = decision.arm.arm_id == planner.arms[0].arm_id
            if slow:
                slow_arm = decision.arm.arm_id
            planner.observe(decision, 5.0 if slow else 0.001)
        # Greedy rounds now avoid the observed-slow arm.
        for _ in range(5):
            decision = planner.choose(signals)
            assert decision.arm.arm_id != slow_arm
            planner.observe(decision, 0.001)

    def test_regime_shift_restarts_exploration(self):
        planner = self._planner(epsilon=0.0)
        small = RefreshSignals(delta_rows=8, view_rows=64, touched_groups=8)
        for _ in range(len(planner.arms) + 1):
            planner.observe(planner.choose(small), 0.001)
        assert planner.regime_shifts == 0
        huge = RefreshSignals(
            delta_rows=50_000, view_rows=64, touched_groups=64,
            retraction_rows=40_000,
        )
        decision = planner.choose(huge)
        assert decision.regime_shift
        assert planner.regime_shifts == 1

    def test_seeded_decisions_replay_identically(self):
        signals = [
            RefreshSignals(
                delta_rows=d, view_rows=100 + d, touched_groups=min(d, 100)
            )
            for d in (5, 500, 5, 50_000, 5)
        ]

        def run():
            planner = self._planner(epsilon=0.5, seed=42)
            trace = []
            for s in signals:
                decision = planner.choose(s)
                planner.observe(decision, 0.001)
                trace.append(decision.arm.arm_id)
            return trace

        assert run() == run()

    def test_planner_seed_distinguishes_views_not_case(self):
        assert planner_seed(0, "a_view") != planner_seed(0, "b_view")
        assert planner_seed(7, "Q") == planner_seed(7, "q")
