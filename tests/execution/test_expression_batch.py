"""Property test: the vectorized expression evaluator equals the row one.

:func:`repro.execution.expression.compile_batch_expression` is a second
compiler for the same bound-expression language as
:func:`~repro.execution.expression.compile_expression`; hypothesis builds
randomized *typed* expression trees (so operators meet operands of the
right type and the interesting NULL/three-valued cases are reached, not
type errors) and randomized column batches, and holds the two evaluators
equal value-for-value.  This is the executable contract behind using
``batch_eval`` for WHERE predicates, computed keys, and computed
aggregate arguments in the native propagation pipeline.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.datatypes.types import DOUBLE, INTEGER, VARCHAR
from repro.execution.expression import (
    batch_eval,
    compile_batch_expression,
    compile_expression,
    true_mask,
)
from repro.planner.expressions import (
    BoundBetween,
    BoundBinary,
    BoundCase,
    BoundCast,
    BoundColumn,
    BoundConstant,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundLike,
    BoundUnary,
)
from repro.zset.batch import ZSetBatch

# The test schema: column 0 INTEGER, column 1 VARCHAR, column 2 DOUBLE.
_INT_COL = st.just(BoundColumn(index=0, type=INTEGER))
_STR_COL = st.just(BoundColumn(index=1, type=VARCHAR))
_FLT_COL = st.just(BoundColumn(index=2, type=DOUBLE))

# Small finite magnitudes: +,-,* over depth-4 trees stay finite, so
# float equality is exact (no inf/NaN artifacts to special-case).
_numbers = st.one_of(
    st.none(),
    st.integers(-50, 50),
    st.floats(-50, 50, allow_nan=False, allow_infinity=False, width=32),
)
_strings = st.one_of(st.none(), st.text("ab%_x", max_size=4))

_num_leaf = st.one_of(_INT_COL, _FLT_COL, _numbers.map(BoundConstant))
_str_leaf = st.one_of(_STR_COL, _strings.map(BoundConstant))


def _numeric(children):
    return st.one_of(
        st.tuples(st.sampled_from("+-*"), children, children).map(
            lambda t: BoundBinary(op=t[0], left=t[1], right=t[2])
        ),
        children.map(lambda e: BoundUnary(op="-", operand=e)),
        st.tuples(
            st.sampled_from(["ABS", "LEAST", "GREATEST", "COALESCE"]),
            st.lists(children, min_size=1, max_size=3),
        ).map(lambda t: BoundFunction(name=t[0], args=t[1])),
        children.map(lambda e: BoundCast(operand=e, type=DOUBLE)),
    )


def _stringy(children):
    return st.one_of(
        st.tuples(children, children).map(
            lambda t: BoundBinary(op="||", left=t[0], right=t[1])
        ),
        st.tuples(st.sampled_from(["UPPER", "LOWER", "TRIM"]), children).map(
            lambda t: BoundFunction(name=t[0], args=[t[1]])
        ),
    )


_num_expr = st.recursive(_num_leaf, _numeric, max_leaves=6)
_str_expr = st.recursive(_str_leaf, _stringy, max_leaves=4)


def _comparisons(operands):
    return st.tuples(
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]), operands, operands
    ).map(lambda t: BoundBinary(op=t[0], left=t[1], right=t[2]))


_bool_leaf = st.one_of(
    _comparisons(_num_expr),
    _comparisons(_str_expr),
    st.tuples(_num_expr, st.booleans()).map(
        lambda t: BoundIsNull(operand=t[0], negated=t[1])
    ),
    st.tuples(
        _num_expr, st.lists(_num_leaf, min_size=1, max_size=3), st.booleans()
    ).map(lambda t: BoundInList(operand=t[0], items=t[1], negated=t[2])),
    st.tuples(_num_expr, _num_leaf, _num_leaf, st.booleans()).map(
        lambda t: BoundBetween(
            operand=t[0], low=t[1], high=t[2], negated=t[3]
        )
    ),
    st.tuples(_str_expr, st.text("ab%_", max_size=3), st.booleans()).map(
        lambda t: BoundLike(
            operand=t[0], pattern=BoundConstant(t[1]), negated=t[2]
        )
    ),
)


def _boolean(children):
    return st.one_of(
        st.tuples(st.sampled_from(["AND", "OR"]), children, children).map(
            lambda t: BoundBinary(op=t[0], left=t[1], right=t[2])
        ),
        children.map(lambda e: BoundUnary(op="NOT", operand=e)),
    )


_bool_expr = st.recursive(_bool_leaf, _boolean, max_leaves=6)

# CASE wires the three type families together: boolean conditions pick
# numeric results (searched form), or a string operand matches string
# candidates (simple form).
_case_expr = st.one_of(
    st.tuples(
        st.lists(st.tuples(_bool_expr, _num_expr), min_size=1, max_size=2),
        st.one_of(st.none(), _num_expr),
    ).map(
        lambda t: BoundCase(operand=None, branches=t[0], else_result=t[1])
    ),
    st.tuples(
        _str_expr,
        st.lists(st.tuples(_str_leaf, _num_expr), min_size=1, max_size=2),
        st.one_of(st.none(), _num_expr),
    ).map(
        lambda t: BoundCase(operand=t[0], branches=t[1], else_result=t[2])
    ),
)

_any_expr = st.one_of(_num_expr, _str_expr, _bool_expr, _case_expr)

_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-50, 50)),
        _strings,
        st.one_of(
            st.none(),
            st.floats(-50, 50, allow_nan=False, allow_infinity=False,
                      width=32),
        ),
    ),
    max_size=12,
)


@settings(max_examples=300, deadline=None)
@given(expr=_any_expr, rows=_rows)
def test_batch_eval_equals_row_evaluator(expr, rows):
    row_eval = compile_expression(expr)
    batch = ZSetBatch.from_rows(rows, arity=3)
    got = list(batch_eval(compile_batch_expression(expr), batch, None))
    want = [row_eval(row, None) for row in rows]
    assert got == want


@settings(max_examples=100, deadline=None)
@given(expr=_bool_expr, rows=_rows)
def test_true_mask_matches_row_filter(expr, rows):
    """The batch_filter adapter: true_mask keeps exactly the rows whose
    row-evaluated predicate is TRUE (NULL rejected, like SQL WHERE)."""
    row_eval = compile_expression(expr)
    batch = ZSetBatch.from_rows(rows, arity=3)
    mask = true_mask(batch_eval(compile_batch_expression(expr), batch, None))
    want = [row_eval(row, None) is True for row in rows]
    assert list(mask) == want
