"""Fail on dead relative links in the repository's Markdown files.

Scans every ``*.md`` under the repo root for Markdown links
(``[text](target)``), keeps the *relative* ones (external ``http(s)``/
``mailto`` links and pure ``#anchor`` links are out of scope), resolves
each target against the linking file's directory, and reports targets
that do not exist on disk.

Used twice: as a tier-1 test (``tests/test_docs_links.py``) and as a
standalone CI step (``python tools/check_doc_links.py``), so a renamed
doc or example breaks the build instead of silently rotting the
cross-references.
"""

from __future__ import annotations

import pathlib
import re
import sys

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", ".hypothesis", "node_modules"}


def iter_markdown_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def relative_links(text: str):
    """Yield the relative link targets in one Markdown document."""
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        # Drop any trailing anchor; the file part is what must exist.
        target = target.split("#", 1)[0]
        if target:
            yield target


def find_dead_links(root: pathlib.Path) -> list[tuple[pathlib.Path, str]]:
    dead: list[tuple[pathlib.Path, str]] = []
    for path in iter_markdown_files(root):
        for target in relative_links(path.read_text(encoding="utf-8")):
            if not (path.parent / target).exists():
                dead.append((path.relative_to(root), target))
    return dead


def main() -> int:
    root = pathlib.Path(__file__).resolve().parents[1]
    dead = find_dead_links(root)
    checked = len(list(iter_markdown_files(root)))
    if dead:
        print(f"dead relative links ({len(dead)}):")
        for path, target in dead:
            print(f"  {path}: {target}")
        return 1
    print(f"docs link check: {checked} Markdown files, no dead relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
